// Durability tests for the aggregator journal and the sharded recovery
// path it feeds: torn-tail truncation round-trips, the
// crash-between-journal-write-and-transaction window, and idempotent
// double recovery. The engine-level cases model a SIGKILL by dropping a
// ShardedDeployment (its simulated chain dies with it, exactly like a
// crashed process) and rebuilding another over the same log directory.

#include "shard/agg_journal.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "common/random.h"
#include "shard/sharded_engine.h"

namespace wedge {
namespace {

std::string TempDir(const char* tag) {
  std::string dir = std::filesystem::temp_directory_path() /
                    (std::string("wedge_aggj_") + tag + "_" +
                     std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

Hash256 FakeHash(uint8_t fill) {
  Hash256 h{};
  h.fill(fill);
  return h;
}

std::vector<JournalLeaf> MakeLeaves(int n, uint8_t salt) {
  std::vector<JournalLeaf> leaves;
  for (int i = 0; i < n; ++i) {
    leaves.push_back(JournalLeaf{static_cast<uint32_t>(i % 3),
                                 static_cast<uint64_t>(10 + i),
                                 FakeHash(static_cast<uint8_t>(salt + i))});
  }
  return leaves;
}

TEST(AggregatorJournalTest, AppendReplayRoundTrip) {
  std::string dir = TempDir("roundtrip");
  std::string path = dir + "/aggregator.journal";
  {
    auto journal = AggregatorJournal::Open(path, {});
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    ASSERT_TRUE(
        (*journal)->AppendEpoch(0, FakeHash(0xA0), MakeLeaves(3, 1)).ok());
    ASSERT_TRUE(
        (*journal)->AppendEpoch(1, FakeHash(0xA1), MakeLeaves(2, 9)).ok());
    ASSERT_TRUE((*journal)->AppendConfirmed(0).ok());
  }
  auto reopened = AggregatorJournal::Open(path, {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const auto& epochs = (*reopened)->epochs();
  ASSERT_EQ(epochs.size(), 2u);
  EXPECT_EQ(epochs[0].epoch, 0u);
  EXPECT_EQ(epochs[0].root, FakeHash(0xA0));
  EXPECT_TRUE(epochs[0].confirmed);
  ASSERT_EQ(epochs[0].leaves.size(), 3u);
  EXPECT_EQ(epochs[0].leaves[1].shard_id, 1u);
  EXPECT_EQ(epochs[0].leaves[1].log_id, 11u);
  EXPECT_EQ(epochs[0].leaves[1].mroot, FakeHash(2));
  EXPECT_EQ(epochs[1].epoch, 1u);
  EXPECT_FALSE(epochs[1].confirmed);
  std::filesystem::remove_all(dir);
}

TEST(AggregatorJournalTest, EnforcesInvariants) {
  std::string dir = TempDir("invariants");
  auto journal = AggregatorJournal::Open(dir + "/j", {});
  ASSERT_TRUE(journal.ok());
  // Confirming an unknown epoch is a caller bug, not a silent no-op.
  EXPECT_EQ((*journal)->AppendConfirmed(5).code(),
            Code::kFailedPrecondition);
  ASSERT_TRUE((*journal)->AppendEpoch(0, FakeHash(1), MakeLeaves(1, 0)).ok());
  // Epochs are consecutive by construction; a gap means state was lost.
  EXPECT_FALSE((*journal)->AppendEpoch(2, FakeHash(2), MakeLeaves(1, 0)).ok());
  // Re-confirming is idempotent (Tick and Recover may race to it).
  ASSERT_TRUE((*journal)->AppendConfirmed(0).ok());
  EXPECT_TRUE((*journal)->AppendConfirmed(0).ok());
  std::filesystem::remove_all(dir);
}

TEST(AggregatorJournalTest, TornTailTruncationRoundTrip) {
  std::string dir = TempDir("torn");
  std::string path = dir + "/aggregator.journal";
  {
    auto journal = AggregatorJournal::Open(path, {});
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(
        (*journal)->AppendEpoch(0, FakeHash(0xB0), MakeLeaves(2, 0)).ok());
    ASSERT_TRUE(
        (*journal)->AppendEpoch(1, FakeHash(0xB1), MakeLeaves(2, 4)).ok());
  }
  // A crash mid-write leaves a torn record: append half a header plus
  // garbage that can never checksum.
  {
    FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const uint8_t garbage[] = {0x00, 0x00, 0x01, 0xFF, 0xDE, 0xAD};
    std::fwrite(garbage, 1, sizeof(garbage), f);
    std::fclose(f);
  }
  // Reopen: the valid prefix replays, the torn tail is truncated away,
  // and the journal accepts the next consecutive epoch as if the torn
  // write had never happened.
  {
    auto reopened = AggregatorJournal::Open(path, {});
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    ASSERT_EQ((*reopened)->epochs().size(), 2u);
    EXPECT_EQ((*reopened)->epochs()[1].root, FakeHash(0xB1));
    ASSERT_TRUE(
        (*reopened)->AppendEpoch(2, FakeHash(0xB2), MakeLeaves(1, 8)).ok());
  }
  // And the rewritten tail itself replays cleanly.
  auto again = AggregatorJournal::Open(path, {});
  ASSERT_TRUE(again.ok());
  ASSERT_EQ((*again)->epochs().size(), 3u);
  EXPECT_EQ((*again)->epochs()[2].epoch, 2u);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Engine-level recovery over a journaled deployment.

class ShardedRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = TempDir("recovery"); }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  Result<std::unique_ptr<ShardedDeployment>> Build() {
    ShardedDeploymentConfig config;
    config.engine.num_shards = 2;
    config.engine.node.batch_size = 4;
    config.engine.node.worker_threads = 1;
    config.log_dir = dir_;
    return ShardedDeployment::Create(config);
  }

  std::vector<AppendRequest> MakeBatch(int n) {
    std::vector<AppendRequest> out;
    for (int i = 0; i < n; ++i) {
      out.push_back(AppendRequest::Make(publisher_, seq_++,
                                        ToBytes("k" + std::to_string(i)),
                                        ToBytes("v")));
    }
    return out;
  }

  std::string dir_;
  KeyPair publisher_ = KeyPair::FromSeed(0xC11E);
  uint64_t seq_ = 0;
};

TEST_F(ShardedRecoveryTest, CrashAfterJournalBeforeConfirmResubmits) {
  std::vector<Stage1Response> acked;
  {
    // Life 1: two tenants append, the epoch closes (journal record +
    // forest tx), then the process "crashes" before the tx confirms —
    // dropping the deployment kills the sim chain just like SIGKILL
    // kills a wedgeblockd, which is exactly the
    // journal-written-but-no-confirmed-transaction window.
    auto d = Build();
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    for (TenantId tenant = 0; tenant < 2; ++tenant) {
      auto r = (*d)->engine().Append(tenant, MakeBatch(4));
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      for (const auto& response : *r) acked.push_back(response);
    }
    (*d)->AdvanceBlocks(1);  // Poll + close epoch 0; tx still pending.
  }
  {
    // Life 2: same log dir, fresh chain. The journal replays the epoch,
    // Recover finds its root missing on-chain and resubmits it.
    auto d = Build();
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    auto report = (*d)->engine().Recover();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->journaled_epochs, 1u);
    EXPECT_EQ(report->resubmitted_epochs, 1u);
    (*d)->AdvanceBlocks(2);  // Confirm the resubmission.

    // Every entry acked in life 1 is readable and provable end to end.
    for (const auto& response : acked) {
      TenantId tenant = 0;  // Tenants 0/1 both map somewhere; try both.
      auto read = (*d)->engine().ReadOne(tenant, response.index);
      if (!read.ok()) read = (*d)->engine().ReadOne(1, response.index);
      ASSERT_TRUE(read.ok()) << read.status().ToString();
      EXPECT_TRUE(read->Verify((*d)->engine().address()));
    }
    auto proof = (*d)->engine().ProveAggregation(0, acked.front().index.log_id);
    if (!proof.ok()) {
      proof = (*d)->engine().ProveAggregation(1, acked.front().index.log_id);
    }
    ASSERT_TRUE(proof.ok()) << proof.status().ToString();
    EXPECT_TRUE(proof->Verify((*d)->engine().address()));

    // Double recovery is a no-op: nothing left to restage or resubmit.
    auto second = (*d)->engine().Recover();
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second->restaged_roots, 0u);
    EXPECT_EQ(second->recovered_epochs, 0u);
    EXPECT_EQ(second->resubmitted_epochs, 0u);
  }
}

TEST_F(ShardedRecoveryTest, SealedButUnjournaledRootsCloseIntoFreshEpochs) {
  {
    // Life 1: batches seal into the shard logs but the process dies
    // before any epoch closes — the journal stays empty while the
    // obligation lives in the shard stores.
    auto d = Build();
    ASSERT_TRUE(d.ok());
    for (TenantId tenant = 0; tenant < 3; ++tenant) {
      ASSERT_TRUE((*d)->engine().Append(tenant, MakeBatch(4)).ok());
    }
    // No AdvanceBlocks: crash strictly before the first epoch close.
  }
  {
    auto d = Build();
    ASSERT_TRUE(d.ok());
    auto report = (*d)->engine().Recover();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->journaled_epochs, 0u);
    EXPECT_GE(report->restaged_roots, 3u);  // One sealed batch per tenant.
    EXPECT_GE(report->recovered_epochs, 1u);
    (*d)->AdvanceBlocks(2);
    // The recovered epochs confirm and prove like normally closed ones.
    auto agg = (*d)->engine().aggregator();
    ASSERT_NE(agg, nullptr);
    EXPECT_GE(agg->epochs_closed(), 1u);
  }
}

}  // namespace
}  // namespace wedge
