#include "baselines/baselines.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/wedgeblock.h"

namespace wedge {
namespace {

std::vector<std::pair<Bytes, Bytes>> Workload(int n, size_t value_size = 64) {
  Rng rng(n + 1000);
  std::vector<std::pair<Bytes, Bytes>> kvs;
  for (int i = 0; i < n; ++i) {
    kvs.emplace_back(rng.NextBytes(8), rng.NextBytes(value_size));
  }
  return kvs;
}

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest() : clock_(0), chain_(ChainConfig{}, &clock_) {
    key_ = KeyPair::FromSeed(5);
    chain_.Fund(key_.address(), EthToWei(100000));
  }

  SimClock clock_;
  Blockchain chain_;
  KeyPair key_{KeyPair::FromSeed(5)};
};

TEST_F(BaselinesTest, OclCommitsEverythingOnChain) {
  auto ocl = OclClient::Create(&chain_, key_, /*max_pending=*/2);
  ASSERT_TRUE(ocl.ok());
  auto workload = Workload(6);
  auto stats = (*ocl)->CommitAll(workload);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->operations, 6u);
  EXPECT_GT(stats->gas_used, 6 * gas::kTxBase);
  EXPECT_GT(stats->commit_latency_micros, 0);
  // Data is readable back from the contract.
  Bytes query;
  PutU64(query, 3);
  auto raw = chain_.Call((*ocl)->contract_address(), "getEntry", query);
  ASSERT_TRUE(raw.ok());
  ByteReader reader(raw.value());
  EXPECT_EQ(reader.ReadBytes().value(), workload[3].first);
  EXPECT_EQ(reader.ReadBytes().value(), workload[3].second);
}

TEST_F(BaselinesTest, OclCostDominatedByStorage) {
  auto ocl = OclClient::Create(&chain_, key_);
  ASSERT_TRUE(ocl.ok());
  auto stats = (*ocl)->CommitAll(Workload(2, /*value_size=*/1024));
  ASSERT_TRUE(stats.ok());
  // 1024-byte value = 32 words * 20k = 640k gas minimum per op.
  EXPECT_GT(stats->gas_used / stats->operations, 600'000u);
}

TEST_F(BaselinesTest, SoclWritesOnlyDigests) {
  auto socl = SoclClient::Create(&chain_, key_, /*batch_size=*/4);
  ASSERT_TRUE(socl.ok());
  auto stats = (*socl)->CommitAll(Workload(12, /*value_size=*/1024));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->operations, 12u);
  // Per-op gas is tiny compared to OCL (digest only: ~50k per batch of 4).
  EXPECT_LT(stats->gas_used / stats->operations, 30'000u);
  // Three digests recorded sequentially.
  auto tail = chain_.Call((*socl)->root_record_address(), "tailIdx", {});
  ASSERT_TRUE(tail.ok());
  ByteReader reader(tail.value());
  EXPECT_EQ(reader.ReadU64().value(), 3u);
}

TEST_F(BaselinesTest, SoclLatencyBoundByChain) {
  auto socl = SoclClient::Create(&chain_, key_, /*batch_size=*/4);
  ASSERT_TRUE(socl.ok());
  auto stats = (*socl)->CommitAll(Workload(8));
  ASSERT_TRUE(stats.ok());
  // Synchronous commitment cannot beat the block interval.
  EXPECT_GE(stats->commit_latency_micros,
            13 * kMicrosPerSecond);
}

TEST_F(BaselinesTest, RhlPostsBatchesWithCalldataCost) {
  auto rhl = RhlClient::Create(&chain_, key_, /*batch_size=*/4,
                               /*challenge_window_seconds=*/3600,
                               /*escrow=*/EthToWei(8));
  ASSERT_TRUE(rhl.ok());
  auto stats = (*rhl)->CommitAll(Workload(8, /*value_size=*/1024));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->operations, 8u);
  // Calldata-driven: over 16 gas per posted byte.
  EXPECT_GT(stats->gas_used,
            stats->bytes_committed * 16);
  // But much cheaper than OCL storage (sanity bound).
  EXPECT_LT(stats->gas_used / stats->operations, 200'000u);
  EXPECT_EQ((*rhl)->posted_batches().size(), 2u);
}

TEST_F(BaselinesTest, RhlChallengeOnlySucceedsOnFraud) {
  auto rhl = RhlClient::Create(&chain_, key_, 4, 3600, EthToWei(8));
  ASSERT_TRUE(rhl.ok());
  auto workload = Workload(4);
  ASSERT_TRUE((*rhl)->CommitAll(workload).ok());

  KeyPair challenger = KeyPair::FromSeed(6);
  chain_.Fund(challenger.address(), EthToWei(10));

  // Honest batch: challenge reverts.
  auto honest = (*rhl)->Challenge(challenger, 0, (*rhl)->posted_batches()[0]);
  ASSERT_TRUE(honest.ok());
  EXPECT_FALSE(honest->success);

  // Replaying wrong data also reverts (cannot frame the sequencer).
  Bytes wrong = (*rhl)->posted_batches()[0];
  wrong.back() ^= 1;
  auto framed = (*rhl)->Challenge(challenger, 0, wrong);
  ASSERT_TRUE(framed.ok());
  EXPECT_FALSE(framed->success);
}

TEST_F(BaselinesTest, RhlFraudulentDigestSlashed) {
  // A fraudulent sequencer posts a batch whose digest does not match.
  auto rhl = RhlClient::Create(&chain_, key_, 4, 3600, EthToWei(8));
  ASSERT_TRUE(rhl.ok());
  Bytes batch = EncodeKvBatch(Workload(4), 0, 4);
  Hash256 wrong_digest = Sha256::Digest("not the real digest");

  Transaction tx;
  tx.from = key_.address();
  tx.to = (*rhl)->contract_address();
  tx.method = "submitBatch";
  PutBytes(tx.calldata, batch);
  Append(tx.calldata, HashToBytes(wrong_digest));
  tx.gas_limit = 5'000'000;
  auto id = chain_.Submit(tx);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(chain_.WaitForReceipt(id.value())->success);

  KeyPair challenger = KeyPair::FromSeed(7);
  chain_.Fund(challenger.address(), EthToWei(10));
  Wei before = chain_.BalanceOf(challenger.address());
  auto receipt = (*rhl)->Challenge(challenger, 0, batch);
  ASSERT_TRUE(receipt.ok());
  EXPECT_TRUE(receipt->success);
  // The challenger won the 8 ETH escrow.
  EXPECT_EQ(chain_.BalanceOf(challenger.address()) + receipt->fee,
            before + EthToWei(8));
}

TEST_F(BaselinesTest, RhlFinalityAfterChallengeWindow) {
  auto rhl = RhlClient::Create(&chain_, key_, 4, /*window=*/600);
  ASSERT_TRUE(rhl.ok());
  ASSERT_TRUE((*rhl)->CommitAll(Workload(4)).ok());
  Bytes query;
  PutU64(query, 0);
  auto is_final = chain_.Call((*rhl)->contract_address(), "isFinal", query);
  ASSERT_TRUE(is_final.ok());
  EXPECT_EQ((*is_final)[0], 0);  // Window still open.

  clock_.AdvanceSeconds(700);
  chain_.PumpUntilNow();
  is_final = chain_.Call((*rhl)->contract_address(), "isFinal", query);
  ASSERT_TRUE(is_final.ok());
  EXPECT_EQ((*is_final)[0], 1);
  EXPECT_EQ((*rhl)->FinalityLagMicros(), 600 * kMicrosPerSecond);
}

TEST_F(BaselinesTest, CostOrderingMatchesPaper) {
  // The Table 1 shape: cost(OCL) ~= cost(RHL) >> cost(SOCL) ~= cost(WB).
  auto workload = Workload(8, /*value_size=*/1024);

  auto ocl = OclClient::Create(&chain_, key_);
  auto stats_ocl = (*ocl)->CommitAll(workload);
  ASSERT_TRUE(stats_ocl.ok());

  auto socl = SoclClient::Create(&chain_, key_, 4);
  auto stats_socl = (*socl)->CommitAll(workload);
  ASSERT_TRUE(stats_socl.ok());

  auto rhl = RhlClient::Create(&chain_, key_, 4);
  auto stats_rhl = (*rhl)->CommitAll(workload);
  ASSERT_TRUE(stats_rhl.ok());

  double ocl_cost = stats_ocl->EthPerOp();
  double socl_cost = stats_socl->EthPerOp();
  double rhl_cost = stats_rhl->EthPerOp();
  EXPECT_GT(ocl_cost, 10 * socl_cost);
  EXPECT_GT(rhl_cost, socl_cost);
  EXPECT_GT(ocl_cost, rhl_cost);  // Storage beats calldata in cost.
}

}  // namespace
}  // namespace wedge
