#include "core/batch_read.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/wedgeblock.h"

namespace wedge {
namespace {

class BatchReadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DeploymentConfig config;
    config.node.batch_size = 8;
    config.node.worker_threads = 2;
    auto d = Deployment::Create(config);
    ASSERT_TRUE(d.ok());
    deployment_ = std::move(d).value();
    auto& pub = deployment_->publisher();
    std::vector<std::pair<Bytes, Bytes>> kvs;
    for (int i = 0; i < 24; ++i) {
      kvs.emplace_back(ToBytes("k" + std::to_string(i)),
                       ToBytes("v" + std::to_string(i)));
    }
    ASSERT_TRUE(pub.Publish(pub.MakeRequests(kvs)).ok());
    deployment_->AdvanceBlocks(4);
  }

  std::unique_ptr<Deployment> deployment_;
};

TEST_F(BatchReadTest, WholePositionRead) {
  auto batch = deployment_->node().ReadBatch(1);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->log_id, 1u);
  EXPECT_EQ(batch->entries.size(), 8u);
  EXPECT_TRUE(batch->Verify(deployment_->node().address()));
  // Entries decode to the original requests in order.
  for (size_t i = 0; i < batch->entries.size(); ++i) {
    EXPECT_EQ(batch->entries[i].first, i);
    auto req = AppendRequest::Deserialize(batch->entries[i].second);
    ASSERT_TRUE(req.ok());
    EXPECT_EQ(req->sequence, 8 + i);  // Position 1 holds requests 8..15.
  }
}

TEST_F(BatchReadTest, SelectedOffsetsRead) {
  auto batch = deployment_->node().ReadBatch(0, {1, 4, 6});
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->entries.size(), 3u);
  EXPECT_TRUE(batch->Verify(deployment_->node().address()));
}

TEST_F(BatchReadTest, RejectsBadTargets) {
  EXPECT_FALSE(deployment_->node().ReadBatch(99).ok());
  EXPECT_FALSE(deployment_->node().ReadBatch(0, {8}).ok());
}

TEST_F(BatchReadTest, VerifyCatchesTampering) {
  auto batch = deployment_->node().ReadBatch(0).value();
  Address node = deployment_->node().address();
  ASSERT_TRUE(batch.Verify(node));

  auto bad = batch;
  bad.entries[3].second.back() ^= 1;  // Tampered data.
  EXPECT_FALSE(bad.Verify(node));

  bad = batch;
  bad.entries[2].first = 7;  // Misattributed offset.
  EXPECT_FALSE(bad.Verify(node));

  bad = batch;
  bad.mroot[0] ^= 1;  // Wrong root (signature breaks).
  EXPECT_FALSE(bad.Verify(node));

  bad = batch;
  bad.offchain_signature =
      EcdsaSign(KeyPair::FromSeed(123).private_key(), bad.SignedHash());
  EXPECT_FALSE(bad.Verify(node));  // Signed by an imposter.

  bad = batch;
  bad.entries.clear();
  EXPECT_FALSE(bad.Verify(node));
}

TEST_F(BatchReadTest, SerializationRoundTrip) {
  auto batch = deployment_->node().ReadBatch(2, {0, 3}).value();
  auto back = BatchReadResponse::Deserialize(batch.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->Verify(deployment_->node().address()));
  EXPECT_EQ(back->entries.size(), batch.entries.size());
  EXPECT_FALSE(BatchReadResponse::Deserialize(Bytes{9}).ok());
}

TEST_F(BatchReadTest, FastAuditMatchesSlowAudit) {
  AuditorClient auditor = deployment_->MakeAuditor(55);
  auto slow = auditor.Audit(0, 2);
  auto fast = auditor.AuditFast(0, 2);
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast->entries_checked, slow->entries_checked);
  EXPECT_TRUE(fast->Clean());
  EXPECT_TRUE(slow->Clean());
  EXPECT_EQ(fast->not_yet_committed, 0u);
}

TEST_F(BatchReadTest, FastAuditDetectsEquivocation) {
  // Flip the node to tampering mode: ReadBatch serves the honest stored
  // data (tamper injection targets single reads), so instead test the
  // on-chain mismatch path by making the node equivocate on a NEW batch
  // whose digest is never honestly committed.
  deployment_->node().set_byzantine_mode(ByzantineMode::kEquivocateRoot);
  auto& pub = deployment_->publisher();
  std::vector<std::pair<Bytes, Bytes>> kvs;
  for (int i = 0; i < 8; ++i) {
    kvs.emplace_back(ToBytes("x" + std::to_string(i)), ToBytes("y"));
  }
  ASSERT_TRUE(deployment_->node()
                  .Append(pub.MakeRequests(kvs))
                  .ok());
  deployment_->AdvanceBlocks(4);

  AuditorClient auditor = deployment_->MakeAuditor(56);
  auto fast = auditor.AuditFast(3, 3);  // The equivocated position.
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast->onchain_mismatches, 8u);
  EXPECT_FALSE(fast->Clean());
}

TEST_F(BatchReadTest, FastAuditFlagsUncommittedPositions) {
  deployment_->node().set_byzantine_mode(ByzantineMode::kOmitStage2);
  auto& pub = deployment_->publisher();
  std::vector<std::pair<Bytes, Bytes>> kvs;
  for (int i = 0; i < 8; ++i) {
    kvs.emplace_back(ToBytes("o" + std::to_string(i)), ToBytes("p"));
  }
  ASSERT_TRUE(deployment_->node().Append(pub.MakeRequests(kvs)).ok());
  deployment_->AdvanceBlocks(4);

  AuditorClient auditor = deployment_->MakeAuditor(57);
  auto fast = auditor.AuditFast(3, 3);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast->not_yet_committed, 8u);
}

TEST_F(BatchReadTest, FastAuditRejectsEmptyRange) {
  AuditorClient auditor = deployment_->MakeAuditor(58);
  EXPECT_FALSE(auditor.AuditFast(2, 1).ok());
}

}  // namespace
}  // namespace wedge
