#include "cluster/bft_cluster.h"

#include <gtest/gtest.h>

#include "contracts/root_record.h"

namespace wedge {
namespace {

std::vector<AppendRequest> MakeBatch(int n, uint64_t seed = 1) {
  KeyPair key = KeyPair::FromSeed(seed);
  std::vector<AppendRequest> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(AppendRequest::Make(key, i, ToBytes("k" + std::to_string(i)),
                                      ToBytes("v" + std::to_string(i))));
  }
  return out;
}

class BftClusterTest : public ::testing::Test {
 protected:
  BftClusterTest() : clock_(0), chain_(ChainConfig{}, &clock_) {}

  /// Builds a cluster with f=1 (n=4) plus a Root Record contract that
  /// authorizes all members.
  std::unique_ptr<OffchainCluster> MakeCluster(int f = 1) {
    ClusterConfig config;
    config.f = f;
    config.network.base_latency = 100;
    config.network.jitter = 20;
    auto cluster = std::make_unique<OffchainCluster>(config, &clock_, &chain_,
                                                     Address::Zero());
    // Deploy the record contract accepting every member, then rebuild
    // the cluster bound to it.
    auto members = cluster->MemberAddresses();
    for (const Address& m : members) chain_.Fund(m, EthToWei(1000));
    auto rr = chain_.Deploy(members.front(),
                            std::make_unique<RootRecordContract>(members));
    EXPECT_TRUE(rr.ok());
    root_record_ = rr.value();
    return std::make_unique<OffchainCluster>(config, &clock_, &chain_,
                                             root_record_);
  }

  SimClock clock_;
  Blockchain chain_;
  Address root_record_;
};

TEST_F(BftClusterTest, HappyPathQuorumCommit) {
  auto cluster = MakeCluster();
  EXPECT_EQ(cluster->size(), 4u);
  EXPECT_EQ(cluster->quorum(), 3u);

  auto commit = cluster->Append(MakeBatch(8));
  ASSERT_TRUE(commit.ok()) << commit.status().ToString();
  EXPECT_EQ(commit->certificate.log_id, 0u);
  // At least a quorum ack'd (collection stops once 2f+1 matching acks
  // arrive; the last ack may still be in flight).
  EXPECT_GE(commit->certificate.acks.size(), 3u);
  EXPECT_TRUE(VerifyQuorumCertificate(commit->certificate,
                                      cluster->MemberAddresses(),
                                      cluster->quorum()));
  // Per-entry responses verify against the primary.
  ASSERT_EQ(commit->responses.size(), 8u);
  Address primary =
      cluster->MemberAddresses()[cluster->PrimaryIndex()];
  for (const auto& r : commit->responses) {
    EXPECT_TRUE(r.Verify(primary));
    EXPECT_EQ(r.proof.mroot, commit->certificate.mroot);
  }
  // Every replica holds the position identically.
  for (size_t i = 0; i < cluster->size(); ++i) {
    auto pos = cluster->replica(i).store().Get(0);
    ASSERT_TRUE(pos.ok());
    EXPECT_EQ(pos->mroot, commit->certificate.mroot);
  }
}

TEST_F(BftClusterTest, ToleratesFCrashedReplicas) {
  auto cluster = MakeCluster();
  cluster->replica(2).set_fault(ReplicaFault::kCrash);
  auto commit = cluster->Append(MakeBatch(4));
  ASSERT_TRUE(commit.ok());
  // Quorum of 3 out of the remaining replicas.
  EXPECT_GE(commit->certificate.acks.size(), 3u);
  EXPECT_TRUE(VerifyQuorumCertificate(commit->certificate,
                                      cluster->MemberAddresses(), 3));
}

TEST_F(BftClusterTest, ToleratesOmissionAttack) {
  auto cluster = MakeCluster();
  cluster->replica(3).set_fault(ReplicaFault::kOmitAcks);
  auto commit = cluster->Append(MakeBatch(4));
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(commit->certificate.acks.size(), 3u);
}

TEST_F(BftClusterTest, WrongRootAckExcludedFromQuorum) {
  auto cluster = MakeCluster();
  cluster->replica(1).set_fault(ReplicaFault::kWrongRoot);
  auto commit = cluster->Append(MakeBatch(4));
  ASSERT_TRUE(commit.ok());
  // The equivocating ack does not match the honest root.
  EXPECT_EQ(commit->certificate.acks.size(), 3u);
  for (const RootAck& ack : commit->certificate.acks) {
    EXPECT_NE(ack.replica_index, 1u);
  }
}

TEST_F(BftClusterTest, CrashedPrimaryTriggersViewChange) {
  auto cluster = MakeCluster();
  ASSERT_EQ(cluster->PrimaryIndex(), 0u);
  cluster->replica(0).set_fault(ReplicaFault::kCrash);
  auto commit = cluster->Append(MakeBatch(4));
  ASSERT_TRUE(commit.ok()) << commit.status().ToString();
  EXPECT_GT(cluster->view(), 0u);          // Rotated away from replica 0.
  EXPECT_NE(cluster->PrimaryIndex(), 0u);
  EXPECT_EQ(commit->certificate.log_id, 0u);  // Same position committed.
  // Subsequent appends keep working under the new primary.
  auto commit2 = cluster->Append(MakeBatch(4, /*seed=*/2));
  ASSERT_TRUE(commit2.ok());
  EXPECT_EQ(commit2->certificate.log_id, 1u);
}

TEST_F(BftClusterTest, TooManyFaultsIsUnavailable) {
  auto cluster = MakeCluster();
  // f=1 tolerates one fault; two omitting replicas leave only 2 acks.
  cluster->replica(1).set_fault(ReplicaFault::kCrash);
  cluster->replica(2).set_fault(ReplicaFault::kOmitAcks);
  auto commit = cluster->Append(MakeBatch(4));
  EXPECT_FALSE(commit.ok());
  EXPECT_EQ(commit.status().code(), Code::kUnavailable);
}

TEST_F(BftClusterTest, CertificateVerificationRejectsForgeries) {
  auto cluster = MakeCluster();
  auto commit = cluster->Append(MakeBatch(4));
  ASSERT_TRUE(commit.ok());
  auto members = cluster->MemberAddresses();

  QuorumCertificate cert = commit->certificate;
  ASSERT_TRUE(VerifyQuorumCertificate(cert, members, 3));

  // Tampered root.
  QuorumCertificate bad = cert;
  bad.mroot[0] ^= 1;
  EXPECT_FALSE(VerifyQuorumCertificate(bad, members, 3));

  // Duplicate ack stuffing.
  bad = cert;
  bad.acks.push_back(bad.acks[0]);
  EXPECT_FALSE(VerifyQuorumCertificate(bad, members, 3));

  // Out-of-range replica index.
  bad = cert;
  bad.acks[0].replica_index = 99;
  EXPECT_FALSE(VerifyQuorumCertificate(bad, members, 3));

  // Too few signatures for the quorum.
  bad = cert;
  bad.acks.resize(2);
  EXPECT_FALSE(VerifyQuorumCertificate(bad, members, 3));
}

TEST_F(BftClusterTest, CertificateSerializationRoundTrip) {
  auto cluster = MakeCluster();
  auto commit = cluster->Append(MakeBatch(4));
  ASSERT_TRUE(commit.ok());
  Bytes wire = commit->certificate.Serialize();
  auto back = QuorumCertificate::Deserialize(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->log_id, commit->certificate.log_id);
  EXPECT_EQ(back->mroot, commit->certificate.mroot);
  EXPECT_EQ(back->acks.size(), commit->certificate.acks.size());
  EXPECT_TRUE(VerifyQuorumCertificate(back.value(),
                                      cluster->MemberAddresses(), 3));
  EXPECT_FALSE(QuorumCertificate::Deserialize(Bytes{1, 2, 3}).ok());
}

TEST_F(BftClusterTest, AnyMemberCanSubmitStage2) {
  auto cluster = MakeCluster();
  auto commit = cluster->Append(MakeBatch(4));
  ASSERT_TRUE(commit.ok());
  auto tx = cluster->SubmitStage2(commit.value());
  ASSERT_TRUE(tx.ok());
  auto receipt = chain_.WaitForReceipt(tx.value());
  ASSERT_TRUE(receipt.ok());
  EXPECT_TRUE(receipt->success);

  // The on-chain root matches the certificate.
  Bytes query;
  PutU64(query, 0);
  auto raw = chain_.Call(root_record_, "getRootAtIndex", query);
  ASSERT_TRUE(raw.ok());
  ByteReader reader(raw.value());
  EXPECT_EQ(reader.ReadRaw(1).value()[0], 1);
  auto root = HashFromBytes(reader.ReadRaw(32).value());
  EXPECT_EQ(root.value(), commit->certificate.mroot);
}

TEST_F(BftClusterTest, ReadsServeVerifiableResponses) {
  auto cluster = MakeCluster();
  auto commit = cluster->Append(MakeBatch(6));
  ASSERT_TRUE(commit.ok());
  auto read = cluster->ReadOne(EntryIndex{0, 3});
  ASSERT_TRUE(read.ok());
  Address primary = cluster->MemberAddresses()[cluster->PrimaryIndex()];
  EXPECT_TRUE(read->Verify(primary));
  EXPECT_EQ(read->proof.mroot, commit->certificate.mroot);
  EXPECT_FALSE(cluster->ReadOne(EntryIndex{5, 0}).ok());
}

TEST_F(BftClusterTest, LargerClusterF2) {
  auto cluster = MakeCluster(/*f=*/2);
  EXPECT_EQ(cluster->size(), 7u);
  EXPECT_EQ(cluster->quorum(), 5u);
  // Two arbitrary faults are tolerated.
  cluster->replica(1).set_fault(ReplicaFault::kCrash);
  cluster->replica(4).set_fault(ReplicaFault::kWrongRoot);
  auto commit = cluster->Append(MakeBatch(4));
  ASSERT_TRUE(commit.ok());
  EXPECT_GE(commit->certificate.acks.size(), 5u);
}

}  // namespace
}  // namespace wedge
