#include "chain/blockchain.h"

#include <gtest/gtest.h>

#include "chain/gas.h"

namespace wedge {
namespace {

/// Minimal test contract: a counter with a guarded increment and an
/// always-reverting method, to exercise execution semantics.
class CounterContract : public Contract {
 public:
  std::string_view Name() const override { return "Counter"; }

  Result<Bytes> Call(CallContext& ctx, std::string_view method,
                     const Bytes& args) override {
    if (method == "increment") {
      ByteReader reader(args);
      WEDGE_ASSIGN_OR_RETURN(uint64_t by, reader.ReadU64());
      if (by == 0) return Status::Reverted("increment by zero");
      count_ += by;
      ctx.gas().ChargeSstore(false);
      Bytes payload;
      PutU64(payload, count_);
      ctx.Emit("Incremented", payload);
      Bytes out;
      PutU64(out, count_);
      return out;
    }
    if (method == "get") {
      ctx.gas().ChargeSload();
      Bytes out;
      PutU64(out, count_);
      return out;
    }
    if (method == "payday") {
      // Sends 1 wei back to the caller.
      WEDGE_RETURN_IF_ERROR(ctx.TransferOut(ctx.sender(), U256(1)));
      return Bytes();
    }
    if (method == "burn_gas") {
      ctx.gas().Charge(100'000'000);  // Exceeds any sane limit.
      return Bytes();
    }
    return Status::NotFound("unknown method");
  }

  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

class BlockchainTest : public ::testing::Test {
 protected:
  BlockchainTest() : clock_(0), chain_(ChainConfig{}, &clock_) {
    alice_ = KeyPair::FromSeed(1).address();
    bob_ = KeyPair::FromSeed(2).address();
    chain_.Fund(alice_, EthToWei(100));
    chain_.Fund(bob_, EthToWei(1));
  }

  SimClock clock_;
  Blockchain chain_;
  Address alice_, bob_;
};

TEST_F(BlockchainTest, WeiConversionHelpers) {
  EXPECT_EQ(EthToWei(1).ToDecimal(), "1000000000000000000");
  EXPECT_EQ(GweiToWei(1).ToDecimal(), "1000000000");
  EXPECT_EQ(WeiToEthString(EthToWei(2)), "2.0");
  EXPECT_EQ(WeiToEthString(GweiToWei(1'500'000'000)), "1.5");
  EXPECT_NEAR(WeiToEthDouble(EthToWei(3)), 3.0, 1e-9);
  EXPECT_NEAR(WeiToEthDouble(GweiToWei(1)), 1e-9, 1e-15);
}

TEST_F(BlockchainTest, FundAndBalance) {
  EXPECT_EQ(chain_.BalanceOf(alice_), EthToWei(100));
  EXPECT_EQ(chain_.BalanceOf(Address::Zero()), Wei());
  chain_.Fund(alice_, EthToWei(1));
  EXPECT_EQ(chain_.BalanceOf(alice_), EthToWei(101));
}

TEST_F(BlockchainTest, PlainTransferNeedsMining) {
  Transaction tx;
  tx.from = alice_;
  tx.to = bob_;
  tx.value = EthToWei(5);
  auto id = chain_.Submit(tx);
  ASSERT_TRUE(id.ok());
  // Not mined yet.
  EXPECT_FALSE(chain_.GetReceipt(id.value()).ok());
  EXPECT_EQ(chain_.BalanceOf(bob_), EthToWei(1));

  clock_.AdvanceSeconds(13);
  chain_.PumpUntilNow();
  auto receipt = chain_.GetReceipt(id.value());
  ASSERT_TRUE(receipt.ok());
  EXPECT_TRUE(receipt->success);
  EXPECT_EQ(receipt->gas_used, gas::kTxBase);
  EXPECT_EQ(chain_.BalanceOf(bob_), EthToWei(6));
  // Alice paid value + fee.
  Wei fee = U256(gas::kTxBase) * chain_.config().gas_price;
  EXPECT_EQ(chain_.BalanceOf(alice_), EthToWei(95) - fee);
  EXPECT_EQ(chain_.TotalFeesPaid(alice_), fee);
}

TEST_F(BlockchainTest, SubmitRejectsUnderfundedSender) {
  Transaction tx;
  tx.from = bob_;
  tx.to = alice_;
  tx.value = EthToWei(100);  // Bob only has 1 ETH.
  EXPECT_EQ(chain_.Submit(tx).status().code(), Code::kInsufficientFunds);
}

TEST_F(BlockchainTest, BlocksRespectInterval) {
  EXPECT_EQ(chain_.HeadNumber(), 0u);
  clock_.AdvanceSeconds(12);
  chain_.PumpUntilNow();
  EXPECT_EQ(chain_.HeadNumber(), 0u);  // Interval not reached.
  clock_.AdvanceSeconds(1);
  chain_.PumpUntilNow();
  EXPECT_EQ(chain_.HeadNumber(), 1u);
  clock_.AdvanceSeconds(13 * 5);
  chain_.PumpUntilNow();
  EXPECT_EQ(chain_.HeadNumber(), 6u);
}

TEST_F(BlockchainTest, ConfirmationDepth) {
  Transaction tx;
  tx.from = alice_;
  tx.to = bob_;
  tx.value = U256(1);
  auto id = chain_.Submit(tx);
  ASSERT_TRUE(id.ok());
  clock_.AdvanceSeconds(13);
  chain_.PumpUntilNow();
  EXPECT_TRUE(chain_.GetReceipt(id.value()).ok());
  EXPECT_FALSE(chain_.IsConfirmed(id.value()));  // 0 blocks on top.
  clock_.AdvanceSeconds(13 * 3);
  chain_.PumpUntilNow();
  EXPECT_TRUE(chain_.IsConfirmed(id.value()));
}

TEST_F(BlockchainTest, WaitForReceiptAdvancesClock) {
  Transaction tx;
  tx.from = alice_;
  tx.to = bob_;
  tx.value = U256(1);
  auto id = chain_.Submit(tx);
  ASSERT_TRUE(id.ok());
  Micros before = clock_.NowMicros();
  auto receipt = chain_.WaitForReceipt(id.value());
  ASSERT_TRUE(receipt.ok());
  EXPECT_TRUE(receipt->success);
  EXPECT_TRUE(chain_.IsConfirmed(id.value()));
  // ~4 block intervals of simulated time for mining + confirmations.
  EXPECT_GE(clock_.NowMicros() - before, 4 * 13 * kMicrosPerSecond);
}

TEST_F(BlockchainTest, DeployAndCallContract) {
  auto addr = chain_.Deploy(alice_, std::make_unique<CounterContract>());
  ASSERT_TRUE(addr.ok());
  EXPECT_TRUE(chain_.HasContract(addr.value()));
  EXPECT_FALSE(chain_.HasContract(bob_));

  // eth_call-style read.
  auto raw = chain_.Call(addr.value(), "get", {});
  ASSERT_TRUE(raw.ok());
  ByteReader reader(raw.value());
  EXPECT_EQ(reader.ReadU64().value(), 0u);

  // State-changing call via transaction.
  Transaction tx;
  tx.from = alice_;
  tx.to = addr.value();
  tx.method = "increment";
  PutU64(tx.calldata, 41);
  auto id = chain_.Submit(tx);
  ASSERT_TRUE(id.ok());
  auto receipt = chain_.WaitForReceipt(id.value());
  ASSERT_TRUE(receipt.ok());
  EXPECT_TRUE(receipt->success);
  ASSERT_EQ(receipt->events.size(), 1u);
  EXPECT_EQ(receipt->events[0].name, "Incremented");
  EXPECT_GT(receipt->gas_used, gas::kTxBase);  // Calldata + sstore + log.

  auto after = chain_.Call(addr.value(), "get", {});
  ASSERT_TRUE(after.ok());
  ByteReader reader2(after.value());
  EXPECT_EQ(reader2.ReadU64().value(), 41u);
}

TEST_F(BlockchainTest, RevertedCallStillChargesGas) {
  auto addr = chain_.Deploy(alice_, std::make_unique<CounterContract>());
  ASSERT_TRUE(addr.ok());
  Wei fees_before = chain_.TotalFeesPaid(alice_);

  Transaction tx;
  tx.from = alice_;
  tx.to = addr.value();
  tx.method = "increment";
  PutU64(tx.calldata, 0);  // Reverts.
  auto id = chain_.Submit(tx);
  ASSERT_TRUE(id.ok());
  auto receipt = chain_.WaitForReceipt(id.value());
  ASSERT_TRUE(receipt.ok());
  EXPECT_FALSE(receipt->success);
  EXPECT_NE(receipt->revert_reason.find("increment by zero"),
            std::string::npos);
  EXPECT_TRUE(receipt->events.empty());
  EXPECT_GT(chain_.TotalFeesPaid(alice_), fees_before);
}

TEST_F(BlockchainTest, RevertRefundsValue) {
  auto addr = chain_.Deploy(alice_, std::make_unique<CounterContract>());
  ASSERT_TRUE(addr.ok());
  Transaction tx;
  tx.from = alice_;
  tx.to = addr.value();
  tx.value = EthToWei(1);
  tx.method = "increment";
  PutU64(tx.calldata, 0);  // Reverts.
  auto id = chain_.Submit(tx);
  auto receipt = chain_.WaitForReceipt(id.value());
  ASSERT_TRUE(receipt.ok());
  EXPECT_FALSE(receipt->success);
  EXPECT_EQ(chain_.BalanceOf(addr.value()), Wei());  // Value returned.
}

TEST_F(BlockchainTest, OutOfGasReverts) {
  auto addr = chain_.Deploy(alice_, std::make_unique<CounterContract>());
  ASSERT_TRUE(addr.ok());
  Transaction tx;
  tx.from = alice_;
  tx.to = addr.value();
  tx.method = "burn_gas";
  tx.gas_limit = 1'000'000;
  auto id = chain_.Submit(tx);
  ASSERT_TRUE(id.ok());
  auto receipt = chain_.WaitForReceipt(id.value());
  ASSERT_TRUE(receipt.ok());
  EXPECT_FALSE(receipt->success);
  EXPECT_EQ(receipt->revert_reason, "out of gas");
  EXPECT_EQ(receipt->gas_used, 1'000'000u);  // Clamped to the limit.
}

TEST_F(BlockchainTest, ContractCanTransferOut) {
  auto addr =
      chain_.Deploy(alice_, std::make_unique<CounterContract>(), EthToWei(1));
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(chain_.BalanceOf(addr.value()), EthToWei(1));
  Wei bob_before = chain_.BalanceOf(bob_);
  Transaction tx;
  tx.from = bob_;
  tx.to = addr.value();
  tx.method = "payday";
  auto id = chain_.Submit(tx);
  ASSERT_TRUE(id.ok());
  auto receipt = chain_.WaitForReceipt(id.value());
  ASSERT_TRUE(receipt.ok());
  EXPECT_TRUE(receipt->success);
  // Bob got 1 wei but paid gas.
  EXPECT_EQ(chain_.BalanceOf(addr.value()), EthToWei(1) - U256(1));
  EXPECT_EQ(chain_.BalanceOf(bob_) + receipt->fee, bob_before + U256(1));
}

TEST_F(BlockchainTest, DeployChargesCreationFee) {
  Wei before = chain_.BalanceOf(alice_);
  auto addr = chain_.Deploy(alice_, std::make_unique<CounterContract>());
  ASSERT_TRUE(addr.ok());
  EXPECT_LT(chain_.BalanceOf(alice_), before);
  // Underfunded owner cannot deploy.
  Address pauper = KeyPair::FromSeed(99).address();
  EXPECT_FALSE(chain_.Deploy(pauper, std::make_unique<CounterContract>()).ok());
}

TEST_F(BlockchainTest, EventSubscription) {
  auto addr = chain_.Deploy(alice_, std::make_unique<CounterContract>());
  ASSERT_TRUE(addr.ok());
  std::vector<std::string> seen;
  chain_.SubscribeEvents(addr.value(), [&](const LogEvent& ev) {
    seen.push_back(ev.name);
  });
  Transaction tx;
  tx.from = alice_;
  tx.to = addr.value();
  tx.method = "increment";
  PutU64(tx.calldata, 1);
  ASSERT_TRUE(chain_.Submit(tx).ok());
  EXPECT_TRUE(seen.empty());  // Not mined yet.
  clock_.AdvanceSeconds(13);
  chain_.PumpUntilNow();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "Incremented");
}

TEST_F(BlockchainTest, CalldataGasMatchesSchedule) {
  Bytes data = {0, 0, 1, 2, 0};
  EXPECT_EQ(gas::CalldataGas(data), 3 * 4u + 2 * 16u);
  EXPECT_EQ(gas::StorageWords(0), 0u);
  EXPECT_EQ(gas::StorageWords(1), 1u);
  EXPECT_EQ(gas::StorageWords(32), 1u);
  EXPECT_EQ(gas::StorageWords(33), 2u);
}

TEST_F(BlockchainTest, GasMeterLimits) {
  GasMeter meter(1000);
  meter.Charge(999);
  EXPECT_FALSE(meter.ExceededLimit());
  meter.Charge(2);
  EXPECT_TRUE(meter.ExceededLimit());
  EXPECT_EQ(meter.used(), 1001u);
}

TEST_F(BlockchainTest, CallToMissingContractFails) {
  EXPECT_FALSE(chain_.Call(bob_, "get", {}).ok());
  Transaction tx;
  tx.from = alice_;
  tx.to = bob_;
  tx.method = "get";
  EXPECT_EQ(chain_.Submit(tx).status().code(), Code::kNotFound);
}

TEST_F(BlockchainTest, BlockGasLimitSplitsTransactions) {
  ChainConfig small;
  small.block_gas_limit = 50'000;
  small.default_tx_gas_limit = 30'000;
  SimClock clock(0);
  Blockchain chain(small, &clock);
  chain.Fund(alice_, EthToWei(10));
  // Two transfers fit only one per block (30k + 30k > 50k).
  Transaction tx;
  tx.from = alice_;
  tx.to = bob_;
  tx.value = U256(1);
  auto id1 = chain.Submit(tx);
  auto id2 = chain.Submit(tx);
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  clock.AdvanceSeconds(13);
  chain.PumpUntilNow();
  EXPECT_TRUE(chain.GetReceipt(id1.value()).ok());
  EXPECT_FALSE(chain.GetReceipt(id2.value()).ok());  // Next block.
  clock.AdvanceSeconds(13);
  chain.PumpUntilNow();
  EXPECT_TRUE(chain.GetReceipt(id2.value()).ok());
}

}  // namespace
}  // namespace wedge
