// End-to-end chaos test: real wedgeblockd processes over real TCP, a
// seeded fault schedule (SIGKILL mid-epoch, timed partition, graceful
// restart), recovery with --recover, and a full two-level audit. The
// acceptance bar is zero loss: every client-acked entry readable, its
// stage-1 proof verifying, and its log covered by a verifying forest
// aggregation proof.
//
// WEDGE_WEDGEBLOCKD_PATH is injected by CMake ($<TARGET_FILE:wedgeblockd>).
// Set WEDGE_SKIP_SOCKET_TESTS=1 to skip at runtime.

#include "tools/chaos_harness.h"

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

namespace wedge {
namespace {

bool SocketTestsDisabled() {
  const char* skip = std::getenv("WEDGE_SKIP_SOCKET_TESTS");
  return skip != nullptr && skip[0] == '1';
}

TEST(ChaosScheduleTest, DeterministicInSeedAndFleetSize) {
  for (uint64_t seed : {uint64_t{1}, uint64_t{0xC4A05}, uint64_t{998877}}) {
    for (uint32_t procs : {3u, 5u, 9u}) {
      ChaosSchedule a = MakeChaosSchedule(seed, procs);
      ChaosSchedule b = MakeChaosSchedule(seed, procs);
      EXPECT_EQ(a.kill_victim, b.kill_victim);
      EXPECT_EQ(a.partition_victim, b.partition_victim);
      EXPECT_EQ(a.restart_victim, b.restart_victim);
      EXPECT_EQ(a.partition_micros, b.partition_micros);
      // Victims are valid and pairwise distinct, so every fault mode
      // exercises a different process.
      EXPECT_LT(a.kill_victim, procs);
      EXPECT_LT(a.partition_victim, procs);
      EXPECT_LT(a.restart_victim, procs);
      EXPECT_NE(a.kill_victim, a.partition_victim);
      EXPECT_NE(a.kill_victim, a.restart_victim);
      EXPECT_NE(a.partition_victim, a.restart_victim);
    }
  }
  // Different seeds must be able to produce different schedules.
  bool any_diff = false;
  ChaosSchedule base = MakeChaosSchedule(1, 5);
  for (uint64_t seed = 2; seed < 12 && !any_diff; ++seed) {
    ChaosSchedule other = MakeChaosSchedule(seed, 5);
    any_diff = other.kill_victim != base.kill_victim ||
               other.partition_victim != base.partition_victim ||
               other.partition_micros != base.partition_micros;
  }
  EXPECT_TRUE(any_diff);
}

TEST(ChaosScenarioTest, SeededFaultScheduleLosesNothing) {
  if (SocketTestsDisabled()) {
    GTEST_SKIP() << "WEDGE_SKIP_SOCKET_TESTS=1";
  }
  ChaosRunOptions options;
  options.fleet.daemon_binary = WEDGE_WEDGEBLOCKD_PATH;
  options.fleet.work_dir =
      (std::filesystem::temp_directory_path() /
       ("wedge_chaos_test_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(options.fleet.work_dir);
  std::filesystem::create_directories(options.fleet.work_dir);
  options.fleet.num_procs = 3;
  options.seed = 0xC4A05;
  options.tenants = 6;
  options.batches_per_round = 6;
  options.entries_per_batch = 4;
  options.value_bytes = 48;
  options.audit_timeout = 90 * kMicrosPerSecond;

  auto report = RunChaosScenario(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // The workload made real progress and the SIGKILL victim actually held
  // acked entries — otherwise the crash window tested nothing.
  EXPECT_GT(report->workload.entries_acked, 0u);
  ASSERT_EQ(report->acked_per_shard.size(), 3u);
  EXPECT_GT(report->acked_per_shard[report->schedule.kill_victim], 0u);

  // Zero loss: everything acked is readable, stage-1 verified, and
  // covered by a verifying forest proof after recovery.
  EXPECT_EQ(report->audit.acked, report->workload.entries_acked);
  EXPECT_EQ(report->audit.readable, report->audit.acked);
  EXPECT_EQ(report->audit.stage1_ok, report->audit.acked);
  EXPECT_EQ(report->audit.proof_ok, report->audit.proof_total);
  EXPECT_EQ(report->audit.lost, 0u);
  EXPECT_TRUE(report->audit.zero_loss());

  // The faults were real: the breaker tripped at least once for the
  // SIGKILL, and the client retried around transient unavailability.
  EXPECT_GE(report->breaker_trips, 1u);

  std::filesystem::remove_all(options.fleet.work_dir);
}

TEST(ChaosScenarioTest, SegmentStoreFleetLosesNothing) {
  if (SocketTestsDisabled()) {
    GTEST_SKIP() << "WEDGE_SKIP_SOCKET_TESTS=1";
  }
  // Same scenario on the segmented store engine, with segments sealed
  // every 4 positions so the SIGKILL victim dies holding both sealed
  // segments and a live WAL tail — recovery then exercises the
  // O(segments) trailer scan, the WAL replay, and dedup of records a
  // sealed segment already covers.
  ChaosRunOptions options;
  options.fleet.daemon_binary = WEDGE_WEDGEBLOCKD_PATH;
  options.fleet.work_dir =
      (std::filesystem::temp_directory_path() /
       ("wedge_chaos_seg_test_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(options.fleet.work_dir);
  std::filesystem::create_directories(options.fleet.work_dir);
  options.fleet.num_procs = 3;
  options.fleet.store = StoreBackend::kSegment;
  options.fleet.segment_positions = 4;
  options.seed = 0x5E65;
  options.tenants = 6;
  options.batches_per_round = 6;
  options.entries_per_batch = 4;
  options.value_bytes = 48;
  options.audit_timeout = 90 * kMicrosPerSecond;

  auto report = RunChaosScenario(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_GT(report->workload.entries_acked, 0u);
  ASSERT_EQ(report->acked_per_shard.size(), 3u);
  EXPECT_GT(report->acked_per_shard[report->schedule.kill_victim], 0u);

  EXPECT_EQ(report->audit.acked, report->workload.entries_acked);
  EXPECT_EQ(report->audit.readable, report->audit.acked);
  EXPECT_EQ(report->audit.stage1_ok, report->audit.acked);
  EXPECT_EQ(report->audit.proof_ok, report->audit.proof_total);
  EXPECT_EQ(report->audit.lost, 0u);
  EXPECT_TRUE(report->audit.zero_loss());

  // The kill victim's directory really is segmented: at least one
  // sealed segment file exists beside the WAL.
  bool saw_segment = false;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(
           options.fleet.work_dir)) {
    if (entry.path().extension() == ".seg") saw_segment = true;
  }
  EXPECT_TRUE(saw_segment);

  std::filesystem::remove_all(options.fleet.work_dir);
}

}  // namespace
}  // namespace wedge
