#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace wedge {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing entry");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Code::kNotFound);
  EXPECT_EQ(s.message(), "missing entry");
  EXPECT_EQ(s.ToString(), "NotFound: missing entry");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(Code::kTimeout); ++c) {
    EXPECT_FALSE(CodeName(static_cast<Code>(c)).empty());
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
  EXPECT_FALSE(Status::Internal("x") == Status::Corruption("x"));
}

Status FailingOp() { return Status::Corruption("bad byte"); }

Status UsesReturnMacro() {
  WEDGE_RETURN_IF_ERROR(FailingOp());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UsesReturnMacro().code(), Code::kCorruption);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoubleIt(int x) {
  WEDGE_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto ok = DoubleIt(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  auto err = DoubleIt(-1);
  EXPECT_EQ(err.status().code(), Code::kInvalidArgument);
}

TEST(BytesTest, HexRoundTrip) {
  Bytes b = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(HexEncode(b), "0001abff");
  EXPECT_EQ(Hex0x(b), "0x0001abff");
  auto decoded = HexDecode("0x0001abff");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), b);
  auto upper = HexDecode("0001ABFF");
  ASSERT_TRUE(upper.ok());
  EXPECT_EQ(upper.value(), b);
}

TEST(BytesTest, HexDecodeRejectsBadInput) {
  EXPECT_FALSE(HexDecode("abc").ok());   // Odd length.
  EXPECT_FALSE(HexDecode("zz").ok());    // Non-hex character.
}

TEST(BytesTest, StringConversion) {
  Bytes b = ToBytes("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(ToString(b), "hello");
}

TEST(BytesTest, ConcatJoinsBuffers) {
  Bytes a = {1, 2};
  Bytes b = {3};
  Bytes c = Concat({&a, &b});
  EXPECT_EQ(c, (Bytes{1, 2, 3}));
}

TEST(BytesTest, SerializationRoundTrip) {
  Bytes buf;
  PutU32(buf, 0xdeadbeef);
  PutU64(buf, 0x0123456789abcdefULL);
  PutBytes(buf, Bytes{9, 8, 7});
  PutString(buf, "wedge");

  ByteReader reader(buf);
  auto u32 = reader.ReadU32();
  ASSERT_TRUE(u32.ok());
  EXPECT_EQ(u32.value(), 0xdeadbeefu);
  auto u64 = reader.ReadU64();
  ASSERT_TRUE(u64.ok());
  EXPECT_EQ(u64.value(), 0x0123456789abcdefULL);
  auto bytes = reader.ReadBytes();
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes.value(), (Bytes{9, 8, 7}));
  auto str = reader.ReadString();
  ASSERT_TRUE(str.ok());
  EXPECT_EQ(str.value(), "wedge");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BytesTest, ReaderFailsOnTruncation) {
  Bytes buf;
  PutU32(buf, 100);  // Length prefix promising 100 bytes, none present.
  ByteReader reader(buf);
  EXPECT_FALSE(reader.ReadBytes().ok());
}

TEST(ClockTest, SimClockAdvancesExplicitly) {
  SimClock clock(1000);
  EXPECT_EQ(clock.NowMicros(), 1000);
  clock.Advance(500);
  EXPECT_EQ(clock.NowMicros(), 1500);
  clock.AdvanceSeconds(2);
  EXPECT_EQ(clock.NowMicros(), 1500 + 2 * kMicrosPerSecond);
  EXPECT_EQ(clock.NowSeconds(), 2);
}

TEST(ClockTest, StopwatchMeasuresSimTime) {
  SimClock clock;
  Stopwatch sw(&clock);
  clock.Advance(250);
  EXPECT_EQ(sw.ElapsedMicros(), 250);
  sw.Reset();
  EXPECT_EQ(sw.ElapsedMicros(), 0);
}

TEST(ClockTest, RealClockMonotone) {
  RealClock* rc = RealClock::Global();
  Micros a = rc->NowMicros();
  Micros b = rc->NowMicros();
  EXPECT_LE(a, b);
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInBounds) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    uint64_t r = rng.Range(5, 9);
    EXPECT_GE(r, 5u);
    EXPECT_LE(r, 9u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(42);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, BytesAndStrings) {
  Rng rng(42);
  Bytes b = rng.NextBytes(37);
  EXPECT_EQ(b.size(), 37u);
  std::string s = rng.NextString(64);
  EXPECT_EQ(s.size(), 64u);
  for (char c : s) EXPECT_TRUE(isalnum(static_cast<unsigned char>(c)));
}

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(257, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmpty) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&called](size_t) { called = true; });
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace wedge
