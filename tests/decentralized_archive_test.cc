#include "storage/decentralized_archive.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "merkle/merkle_tree.h"

namespace wedge {
namespace {

LogPosition MakePosition(uint64_t id, size_t entries = 4) {
  Rng rng(id + 99);
  LogPosition pos;
  pos.log_id = id;
  for (size_t i = 0; i < entries; ++i) {
    pos.data_list.push_back(rng.NextBytes(64));
  }
  pos.mroot = MerkleTree::Build(pos.data_list)->Root();
  return pos;
}

TEST(DecentralizedArchiveTest, ArchiveAndFetch) {
  DecentralizedArchive archive(10, 3, 42);
  LogPosition pos = MakePosition(0);
  ASSERT_TRUE(archive.Archive(pos).ok());
  EXPECT_EQ(archive.LiveCopies(0), 3);
  auto fetched = archive.Fetch(0, pos.mroot);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->data_list, pos.data_list);
  EXPECT_EQ(fetched->mroot, pos.mroot);
}

TEST(DecentralizedArchiveTest, FetchUnknownPositionFails) {
  DecentralizedArchive archive(10, 3, 42);
  EXPECT_EQ(archive.Fetch(7, Hash256{}).status().code(), Code::kUnavailable);
}

TEST(DecentralizedArchiveTest, RejectsBadReplicationFactor) {
  DecentralizedArchive archive(3, 5, 1);
  EXPECT_FALSE(archive.Archive(MakePosition(0)).ok());
}

TEST(DecentralizedArchiveTest, SurvivesPeerDeaths) {
  DecentralizedArchive archive(10, 3, 42);
  LogPosition pos = MakePosition(1);
  ASSERT_TRUE(archive.Archive(pos).ok());

  // Kill peers one at a time until only one copy is alive: fetch still
  // works. This is the §4.7 extreme-omission recovery path.
  int killed = 0;
  for (int peer = 0; peer < archive.num_peers() && archive.LiveCopies(1) > 1;
       ++peer) {
    archive.KillPeer(peer);
    ++killed;
  }
  EXPECT_EQ(archive.LiveCopies(1), 1);
  EXPECT_GT(killed, 0);
  auto fetched = archive.Fetch(1, pos.mroot);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->data_list, pos.data_list);
}

TEST(DecentralizedArchiveTest, UnavailableWhenAllCopiesDead) {
  DecentralizedArchive archive(6, 2, 7);
  LogPosition pos = MakePosition(2);
  ASSERT_TRUE(archive.Archive(pos).ok());
  for (int peer = 0; peer < archive.num_peers(); ++peer) {
    archive.KillPeer(peer);
  }
  EXPECT_FALSE(archive.Fetch(2, pos.mroot).ok());
  // Revival restores availability.
  for (int peer = 0; peer < archive.num_peers(); ++peer) {
    archive.RevivePeer(peer);
  }
  EXPECT_TRUE(archive.Fetch(2, pos.mroot).ok());
}

TEST(DecentralizedArchiveTest, CorruptCopiesDetectedAndSkipped) {
  DecentralizedArchive archive(8, 3, 11);
  LogPosition pos = MakePosition(3);
  ASSERT_TRUE(archive.Archive(pos).ok());

  // Corrupt two of the three copies (whichever peers hold them).
  int corrupted = 0;
  for (int peer = 0; peer < archive.num_peers() && corrupted < 2; ++peer) {
    if (archive.CorruptCopy(peer, 3).ok()) ++corrupted;
  }
  ASSERT_EQ(corrupted, 2);
  EXPECT_EQ(archive.LiveCopies(3), 1);

  // The fetch verifies roots and returns the intact copy.
  auto fetched = archive.Fetch(3, pos.mroot);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->data_list, pos.data_list);

  // With every copy corrupted, fetch refuses to return garbage.
  for (int peer = 0; peer < archive.num_peers(); ++peer) {
    (void)archive.CorruptCopy(peer, 3);
  }
  EXPECT_FALSE(archive.Fetch(3, pos.mroot).ok());
}

TEST(DecentralizedArchiveTest, PlacementIsDeterministicAndSpread) {
  DecentralizedArchive a(10, 3, 42);
  DecentralizedArchive b(10, 3, 42);
  // Same seed => same placement: archive in a, kill non-holding peers in
  // b, and the holding sets must line up.
  for (uint64_t id = 0; id < 20; ++id) {
    LogPosition pos = MakePosition(id);
    ASSERT_TRUE(a.Archive(pos).ok());
    ASSERT_TRUE(b.Archive(pos).ok());
    EXPECT_EQ(a.LiveCopies(id), 3);
    EXPECT_EQ(b.LiveCopies(id), 3);
  }
  // Spread: with 20 positions * 3 copies over 10 peers, killing any one
  // peer must not lose more than a fraction of the copies.
  a.KillPeer(0);
  int total_live = 0;
  for (uint64_t id = 0; id < 20; ++id) total_live += a.LiveCopies(id);
  EXPECT_GE(total_live, 20 * 2);  // At most one copy lost per position.
}

// Property: for any replication factor k, fetch succeeds iff fewer than
// k of the holding peers are dead.
class ArchiveReplicationTest : public ::testing::TestWithParam<int> {};

TEST_P(ArchiveReplicationTest, ToleratesKMinusOneDeaths) {
  int k = GetParam();
  DecentralizedArchive archive(12, k, 1000 + k);
  LogPosition pos = MakePosition(0);
  ASSERT_TRUE(archive.Archive(pos).ok());
  // Kill k-1 holders.
  int killed = 0;
  for (int peer = 0; peer < archive.num_peers() && killed < k - 1; ++peer) {
    int before = archive.LiveCopies(0);
    archive.KillPeer(peer);
    if (archive.LiveCopies(0) < before) ++killed;
    else archive.RevivePeer(peer);
  }
  EXPECT_EQ(archive.LiveCopies(0), 1);
  EXPECT_TRUE(archive.Fetch(0, pos.mroot).ok());
}

INSTANTIATE_TEST_SUITE_P(Factors, ArchiveReplicationTest,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace wedge
