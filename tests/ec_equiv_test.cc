// Cross-backend equivalence suite for the secp256k1 fast path: every
// table/wNAF/GLV shortcut must be point-identical to the naive
// double-and-add reference, and the batch ECDSA APIs byte-identical to
// their scalar counterparts (RFC 6979 pins every nonce, so equality is
// exact, not statistical). Runs regardless of which backend the
// dispatcher picked; check.sh reruns it with WEDGE_EC_BACKEND=reference
// and CI also builds with -DWEDGE_DISABLE_ECPRECOMP=ON.
#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "crypto/ec_backend.h"
#include "crypto/ecdsa.h"
#include "crypto/secp256k1.h"

namespace wedge {
namespace secp256k1 {
namespace {

/// Pins the fast backend for a test body when it is compiled in;
/// restores the previous backend on destruction.
class ScopedBackend {
 public:
  explicit ScopedBackend(EcBackend backend)
      : previous_(ActiveEcBackend()),
        active_(SetEcBackendForTest(backend)) {}
  ~ScopedBackend() { SetEcBackendForTest(previous_); }
  bool active() const { return active_; }

 private:
  EcBackend previous_;
  bool active_;
};

std::vector<U256> SeededCorpus(size_t count, uint64_t seed) {
  const U256& n = GroupOrder();
  std::vector<U256> out;
  out.reserve(count + 16);
  // Edge cases first: identity-adjacent scalars, order boundaries, and
  // values exercising the mod-n reduction documented on ScalarMul.
  out.push_back(U256::Zero());
  out.push_back(U256::One());
  out.push_back(U256(2));
  out.push_back(n - U256::One());   // n - 1
  out.push_back(n);                 // == 0 after reduction
  out.push_back(n + U256::One());   // == 1 after reduction
  out.push_back(U256::One().Shl(255));  // 2^255
  out.push_back(U256::Max());       // 2^256 - 1
  out.push_back(U256::One().Shl(128));  // GLV split boundary region
  out.push_back(n.Shr(1));
  Rng rng(seed);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(U256(rng.Next(), rng.Next(), rng.Next(), rng.Next()));
  }
  return out;
}

TEST(EcEquivTest, ScalarMulBaseMatchesReferenceAcrossCorpus) {
  ScopedBackend fast(EcBackend::kFast);
  if (!fast.active()) GTEST_SKIP() << "fast backend compiled out";
  // 10k scalars: the comb covers every window/digit combination many
  // times over, and the edge cases pin reduction semantics.
  for (const U256& k : SeededCorpus(10000, 0xEC0FFEE)) {
    ASSERT_EQ(ScalarMulBase(k), reference::ScalarMulBase(k))
        << "k = " << k.ToHex();
  }
}

TEST(EcEquivTest, ScalarMulMatchesReference) {
  ScopedBackend fast(EcBackend::kFast);
  if (!fast.active()) GTEST_SKIP() << "fast backend compiled out";
  AffinePoint p = reference::ScalarMulBase(U256(0xABCDEF));
  for (const U256& k : SeededCorpus(300, 0xBEEF)) {
    ASSERT_EQ(ScalarMul(p, k), reference::ScalarMul(p, k))
        << "k = " << k.ToHex();
  }
  // Infinity in, infinity out.
  EXPECT_TRUE(ScalarMul(AffinePoint::Infinity(), U256(7)).infinity);
}

TEST(EcEquivTest, ScalarMulReducesScalarModN) {
  // Documented on ScalarMul: k is ALWAYS reduced mod n first.
  AffinePoint p = ScalarMulBase(U256(0x1234));
  EXPECT_EQ(ScalarMul(p, GroupOrder() + U256(5)), ScalarMul(p, U256(5)));
  EXPECT_TRUE(ScalarMul(p, GroupOrder()).infinity);
  EXPECT_EQ(ScalarMulBase(GroupOrder() + U256(5)), ScalarMulBase(U256(5)));
}

TEST(EcEquivTest, DoubleScalarMulBaseMatchesReference) {
  ScopedBackend fast(EcBackend::kFast);
  if (!fast.active()) GTEST_SKIP() << "fast backend compiled out";
  AffinePoint p = reference::ScalarMulBase(U256(0x5EED));
  std::vector<U256> corpus = SeededCorpus(200, 0xD00D);
  for (size_t i = 0; i + 1 < corpus.size(); i += 2) {
    const U256& u1 = corpus[i];
    const U256& u2 = corpus[i + 1];
    ASSERT_EQ(DoubleScalarMulBase(u1, p, u2),
              reference::DoubleScalarMulBase(u1, p, u2))
        << "u1 = " << u1.ToHex() << " u2 = " << u2.ToHex();
  }
}

TEST(EcEquivTest, GlvSplitReassemblesAndIsHalfWidth) {
  const U256& n = GroupOrder();
  const U256& lambda = internal::GlvLambda();
  for (const U256& k : SeededCorpus(2000, 0x617F)) {
    U256 k1, k2;
    bool neg1 = false, neg2 = false;
    internal::SplitScalarGlv(k, &k1, &neg1, &k2, &neg2);
    // Magnitudes are genuinely half-width.
    EXPECT_LE(k1.BitLength(), 132) << "k = " << k.ToHex();
    EXPECT_LE(k2.BitLength(), 132) << "k = " << k.ToHex();
    // (±k1) + (±k2)*lambda == k (mod n).
    U256 t1 = neg1 ? FnSub(U256::Zero(), k1) : k1;
    U256 t2 = neg2 ? FnSub(U256::Zero(), k2) : k2;
    EXPECT_EQ(FnAdd(t1, FnMul(t2, lambda)), FnReduce(k))
        << "k = " << k.ToHex();
  }
}

TEST(EcEquivTest, GlvEndomorphismActsAsLambda) {
  // phi(P) = (beta*x, y) must equal lambda*P — the identity the verify
  // loop's phi-table relies on.
  AffinePoint p = ScalarMulBase(U256(0xFEED));
  AffinePoint phi;
  phi.x = FpMul(p.x, internal::GlvBeta());
  phi.y = p.y;
  phi.infinity = false;
  EXPECT_TRUE(IsOnCurve(phi));
  EXPECT_EQ(phi, ScalarMul(p, internal::GlvLambda()));
}

TEST(EcEquivTest, ScalarMulBaseManyMatchesSingles) {
  std::vector<U256> ks = SeededCorpus(500, 0xBA7C4);
  std::vector<AffinePoint> batch(ks.size());
  ScalarMulBaseMany(ks.data(), ks.size(), batch.data());
  for (size_t i = 0; i < ks.size(); ++i) {
    ASSERT_EQ(batch[i], ScalarMulBase(ks[i])) << "i = " << i;
  }
}

TEST(EcEquivTest, BatchInversionMatchesSingles) {
  Rng rng(0x1412);
  std::vector<U256> xs;
  for (int i = 0; i < 300; ++i) {
    U256 x = U256::Mod(U256(rng.Next(), rng.Next(), rng.Next(), rng.Next()),
                       FieldPrime());
    if (!x.IsZero()) xs.push_back(x);
  }
  std::vector<U256> inv(xs.size());
  FpInvMany(xs.data(), xs.size(), inv.data());
  for (size_t i = 0; i < xs.size(); ++i) {
    ASSERT_EQ(inv[i], FpInv(xs[i])) << "i = " << i;
  }
  // Aliasing form (out == xs) must give the same answers.
  std::vector<U256> aliased = xs;
  FpInvMany(aliased.data(), aliased.size(), aliased.data());
  EXPECT_EQ(aliased, inv);

  std::vector<U256> ninv(xs.size());
  FnInvMany(xs.data(), xs.size(), ninv.data());
  for (size_t i = 0; i < xs.size(); ++i) {
    ASSERT_EQ(ninv[i], FnInv(xs[i])) << "i = " << i;
  }
}

TEST(EcEquivDeathTest, ZeroInversionAborts) {
  // FnInv/FpInv on zero is always a caller bug: the contract is a hard
  // abort, never a garbage inverse.
  EXPECT_DEATH(FpInv(U256::Zero()), "zero input");
  EXPECT_DEATH(FnInv(U256::Zero()), "zero input");
  EXPECT_DEATH(FnInv(GroupOrder()), "zero input");
  U256 xs[2] = {U256(3), U256::Zero()};
  U256 out[2];
  EXPECT_DEATH(FpInvMany(xs, 2, out), "zero input");
}

TEST(EcEquivTest, SignManyByteIdenticalToSingles) {
  KeyPair kp = KeyPair::FromSeed(77);
  std::vector<Hash256> hashes;
  Rng rng(0x51671);
  for (int i = 0; i < 512; ++i) {
    Hash256 h;
    for (auto& b : h) b = static_cast<uint8_t>(rng.Next());
    hashes.push_back(h);
  }
  std::vector<EcdsaSignature> batch =
      EcdsaSignMany(kp.private_key(), hashes);
  ASSERT_EQ(batch.size(), hashes.size());
  for (size_t i = 0; i < hashes.size(); ++i) {
    EcdsaSignature single = EcdsaSign(kp.private_key(), hashes[i]);
    ASSERT_EQ(batch[i].Serialize(), single.Serialize()) << "i = " << i;
  }
}

TEST(EcEquivTest, SignManyMatchesAcrossBackends) {
  ScopedBackend fast(EcBackend::kFast);
  if (!fast.active()) GTEST_SKIP() << "fast backend compiled out";
  KeyPair kp = KeyPair::FromSeed(99);
  std::vector<Hash256> hashes;
  for (int i = 0; i < 32; ++i) {
    Hash256 h{};
    h[0] = static_cast<uint8_t>(i);
    h[31] = 0xA5;
    hashes.push_back(h);
  }
  std::vector<EcdsaSignature> fast_sigs =
      EcdsaSignMany(kp.private_key(), hashes);
  {
    ScopedBackend ref(EcBackend::kReference);
    std::vector<EcdsaSignature> ref_sigs =
        EcdsaSignMany(kp.private_key(), hashes);
    for (size_t i = 0; i < hashes.size(); ++i) {
      ASSERT_EQ(fast_sigs[i].Serialize(), ref_sigs[i].Serialize())
          << "i = " << i;
    }
  }
}

TEST(EcEquivTest, VerifyManyMatchesSingles) {
  KeyPair kp = KeyPair::FromSeed(123);
  KeyPair other = KeyPair::FromSeed(124);
  std::vector<Hash256> hashes;
  std::vector<EcdsaSignature> sigs;
  for (int i = 0; i < 64; ++i) {
    Hash256 h{};
    h[0] = static_cast<uint8_t>(i);
    hashes.push_back(h);
    sigs.push_back(EcdsaSign(kp.private_key(), h));
  }
  // Poison a spread of entries so the batch path proves it fails
  // per-item, not per-batch: flipped s, swapped hash, r out of range,
  // zero scalars.
  sigs[3].s = FnAdd(sigs[3].s, U256::One());
  sigs[10] = EcdsaSign(other.private_key(), hashes[10]);  // wrong key
  sigs[17].r = GroupOrder();
  sigs[21].r = U256::Zero();
  sigs[40].s = U256::Zero();

  std::vector<uint8_t> ok = EcdsaVerifyMany(kp.public_key(), hashes, sigs);
  ASSERT_EQ(ok.size(), sigs.size());
  for (size_t i = 0; i < sigs.size(); ++i) {
    EXPECT_EQ(ok[i] != 0, EcdsaVerify(kp.public_key(), hashes[i], sigs[i]))
        << "i = " << i;
  }
  EXPECT_EQ(ok[3], 0);
  EXPECT_EQ(ok[10], 0);
  EXPECT_EQ(ok[17], 0);
  EXPECT_EQ(ok[21], 0);
  EXPECT_EQ(ok[40], 0);
  EXPECT_EQ(ok[0], 1);
}

TEST(EcEquivTest, RecoverConsistentAcrossBackends) {
  ScopedBackend fast(EcBackend::kFast);
  if (!fast.active()) GTEST_SKIP() << "fast backend compiled out";
  KeyPair kp = KeyPair::FromSeed(321);
  Hash256 h{};
  h[5] = 0x42;
  EcdsaSignature sig = EcdsaSign(kp.private_key(), h);
  auto fast_pub = EcdsaRecover(h, sig);
  ASSERT_TRUE(fast_pub.ok());
  {
    ScopedBackend ref(EcBackend::kReference);
    auto ref_pub = EcdsaRecover(h, sig);
    ASSERT_TRUE(ref_pub.ok());
    EXPECT_EQ(fast_pub.value(), ref_pub.value());
  }
  EXPECT_EQ(fast_pub.value(), kp.public_key());
}

}  // namespace
}  // namespace secp256k1
}  // namespace wedge
