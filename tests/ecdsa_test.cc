#include "crypto/ecdsa.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace wedge {
namespace {

TEST(AddressTest, HexRoundTrip) {
  KeyPair kp = KeyPair::FromSeed(1);
  std::string hex = kp.address().ToHex();
  EXPECT_EQ(hex.size(), 42u);
  EXPECT_EQ(hex.substr(0, 2), "0x");
  auto back = Address::FromHex(hex);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), kp.address());
}

TEST(AddressTest, ZeroAddress) {
  EXPECT_TRUE(Address::Zero().IsZero());
  EXPECT_FALSE(KeyPair::FromSeed(1).address().IsZero());
  EXPECT_FALSE(Address::FromHex("0x1234").ok());  // Wrong length.
}

TEST(KeyPairTest, DeterministicFromSeed) {
  KeyPair a = KeyPair::FromSeed(7);
  KeyPair b = KeyPair::FromSeed(7);
  EXPECT_EQ(a.private_key(), b.private_key());
  EXPECT_EQ(a.address(), b.address());
  KeyPair c = KeyPair::FromSeed(8);
  EXPECT_NE(a.address(), c.address());
}

TEST(KeyPairTest, RejectsInvalidSecrets) {
  EXPECT_FALSE(KeyPair::FromPrivateKey(U256::Zero()).ok());
  EXPECT_FALSE(KeyPair::FromPrivateKey(secp256k1::GroupOrder()).ok());
  EXPECT_TRUE(KeyPair::FromPrivateKey(U256::One()).ok());
}

TEST(KeyPairTest, PublicKeyMatchesPrivate) {
  KeyPair kp = KeyPair::FromSeed(3);
  EXPECT_EQ(kp.public_key(), secp256k1::ScalarMulBase(kp.private_key()));
  EXPECT_TRUE(secp256k1::IsOnCurve(kp.public_key()));
}

TEST(EcdsaTest, SignVerifyRoundTrip) {
  KeyPair kp = KeyPair::FromSeed(42);
  Hash256 h = Sha256::Digest("wedgeblock log entry");
  EcdsaSignature sig = EcdsaSign(kp.private_key(), h);
  EXPECT_TRUE(EcdsaVerify(kp.public_key(), h, sig));
}

TEST(EcdsaTest, VerifyFailsOnWrongMessage) {
  KeyPair kp = KeyPair::FromSeed(42);
  Hash256 h = Sha256::Digest("message one");
  EcdsaSignature sig = EcdsaSign(kp.private_key(), h);
  EXPECT_FALSE(EcdsaVerify(kp.public_key(), Sha256::Digest("message two"), sig));
}

TEST(EcdsaTest, VerifyFailsOnWrongKey) {
  KeyPair signer = KeyPair::FromSeed(1);
  KeyPair other = KeyPair::FromSeed(2);
  Hash256 h = Sha256::Digest("payload");
  EcdsaSignature sig = EcdsaSign(signer.private_key(), h);
  EXPECT_FALSE(EcdsaVerify(other.public_key(), h, sig));
}

TEST(EcdsaTest, VerifyFailsOnTamperedSignature) {
  KeyPair kp = KeyPair::FromSeed(5);
  Hash256 h = Sha256::Digest("payload");
  EcdsaSignature sig = EcdsaSign(kp.private_key(), h);
  EcdsaSignature bad = sig;
  bad.s = secp256k1::FnAdd(bad.s, U256::One());
  EXPECT_FALSE(EcdsaVerify(kp.public_key(), h, bad));
  bad = sig;
  bad.r = secp256k1::FnAdd(bad.r, U256::One());
  EXPECT_FALSE(EcdsaVerify(kp.public_key(), h, bad));
}

TEST(EcdsaTest, RejectsDegenerateSignatures) {
  KeyPair kp = KeyPair::FromSeed(5);
  Hash256 h = Sha256::Digest("payload");
  EcdsaSignature zero;
  zero.r = U256::Zero();
  zero.s = U256::One();
  EXPECT_FALSE(EcdsaVerify(kp.public_key(), h, zero));
  zero.r = U256::One();
  zero.s = U256::Zero();
  EXPECT_FALSE(EcdsaVerify(kp.public_key(), h, zero));
  zero.r = secp256k1::GroupOrder();  // Out of range.
  zero.s = U256::One();
  EXPECT_FALSE(EcdsaVerify(kp.public_key(), h, zero));
}

TEST(EcdsaTest, DeterministicNonces) {
  // RFC 6979: same key + message => identical signature.
  KeyPair kp = KeyPair::FromSeed(9);
  Hash256 h = Sha256::Digest("deterministic");
  EXPECT_EQ(EcdsaSign(kp.private_key(), h), EcdsaSign(kp.private_key(), h));
  // Different message => different r.
  EcdsaSignature other = EcdsaSign(kp.private_key(), Sha256::Digest("x"));
  EXPECT_NE(EcdsaSign(kp.private_key(), h).r, other.r);
}

TEST(EcdsaTest, LowSNormalization) {
  // All produced signatures have s <= n/2 (Ethereum malleability rule).
  U256 half_n = secp256k1::GroupOrder().Shr(1);
  Rng rng(31);
  for (int i = 0; i < 10; ++i) {
    KeyPair kp = KeyPair::FromSeed(rng.Next());
    Hash256 h = Sha256::Digest(rng.NextString(20));
    EcdsaSignature sig = EcdsaSign(kp.private_key(), h);
    EXPECT_LE(sig.s, half_n);
  }
}

TEST(EcdsaTest, Rfc6979KnownVector) {
  // Well-known secp256k1 RFC 6979 vector: key = 1, message
  // "Satoshi Nakamoto", SHA-256 digest.
  auto kp = KeyPair::FromPrivateKey(U256::One());
  ASSERT_TRUE(kp.ok());
  Hash256 h = Sha256::Digest("Satoshi Nakamoto");
  EcdsaSignature sig = EcdsaSign(kp->private_key(), h);
  EXPECT_EQ(sig.r.ToHex(),
            "934b1ea10a4b3c1757e2b0c017d0b6143ce3c9a7e6a4a49860d7a6ab210ee3d8");
  EXPECT_EQ(sig.s.ToHex(),
            "2442ce9d2b916064108014783e923ec36b49743e2ffa1c4496f01a512aafd9e5");
}

TEST(EcdsaTest, RecoverReturnsSignerKey) {
  Rng rng(33);
  for (int i = 0; i < 8; ++i) {
    KeyPair kp = KeyPair::FromSeed(rng.Next());
    Hash256 h = Sha256::Digest(rng.NextString(40));
    EcdsaSignature sig = EcdsaSign(kp.private_key(), h);
    auto rec = EcdsaRecover(h, sig);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec.value(), kp.public_key());
    EXPECT_EQ(RecoverSigner(h, sig), kp.address());
  }
}

TEST(EcdsaTest, RecoverWrongMessageGivesDifferentSigner) {
  KeyPair kp = KeyPair::FromSeed(77);
  Hash256 h = Sha256::Digest("original");
  EcdsaSignature sig = EcdsaSign(kp.private_key(), h);
  Address recovered = RecoverSigner(Sha256::Digest("forged"), sig);
  EXPECT_NE(recovered, kp.address());
}

TEST(EcdsaTest, RecoverRejectsBadSignature) {
  EcdsaSignature sig;
  sig.r = U256::Zero();
  sig.s = U256::One();
  Hash256 h = Sha256::Digest("x");
  EXPECT_FALSE(EcdsaRecover(h, sig).ok());
  EXPECT_TRUE(RecoverSigner(h, sig).IsZero());
}

TEST(EcdsaTest, SignatureSerializationRoundTrip) {
  KeyPair kp = KeyPair::FromSeed(123);
  Hash256 h = Sha256::Digest("serialize me");
  EcdsaSignature sig = EcdsaSign(kp.private_key(), h);
  Bytes wire = sig.Serialize();
  EXPECT_EQ(wire.size(), 65u);
  auto back = EcdsaSignature::Deserialize(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), sig);
  EXPECT_FALSE(EcdsaSignature::Deserialize(Bytes(64, 0)).ok());
  wire[64] = 9;  // Invalid recovery id.
  EXPECT_FALSE(EcdsaSignature::Deserialize(wire).ok());
}

// Property sweep across many seeds: sign → verify → recover.
class EcdsaPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EcdsaPropertyTest, SignVerifyRecover) {
  KeyPair kp = KeyPair::FromSeed(GetParam());
  Rng rng(GetParam() ^ 0x5eed);
  Hash256 h = Sha256::Digest(rng.NextString(32));
  EcdsaSignature sig = EcdsaSign(kp.private_key(), h);
  EXPECT_TRUE(EcdsaVerify(kp.public_key(), h, sig));
  EXPECT_EQ(RecoverSigner(h, sig), kp.address());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EcdsaPropertyTest,
                         ::testing::Values(1, 2, 3, 10, 99, 1234, 99999,
                                           0xdeadbeefULL));

}  // namespace
}  // namespace wedge
