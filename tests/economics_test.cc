#include "core/economics.h"

#include <gtest/gtest.h>

#include "core/wedgeblock.h"

namespace wedge {
namespace {

TEST(EconomicsTest, RequiredEscrowScalesWithExposure) {
  EscrowModel model;
  model.gain_per_op = GweiToWei(1);  // 1 gwei gained per forged op.
  model.ops_per_second = 1000;
  model.detection_window_seconds = 60;
  model.safety_margin = 1.0;
  // 1 gwei * 1000 ops/s * 60 s = 60,000 gwei.
  EXPECT_EQ(RequiredEscrow(model), GweiToWei(60'000));

  model.safety_margin = 2.0;
  EXPECT_EQ(RequiredEscrow(model), GweiToWei(120'000));

  model.detection_window_seconds = 120;
  EXPECT_EQ(RequiredEscrow(model), GweiToWei(240'000));
}

TEST(EconomicsTest, DegenerateModelsNeedNoEscrow) {
  EscrowModel model;
  model.gain_per_op = Wei();
  model.ops_per_second = 1000;
  model.detection_window_seconds = 60;
  EXPECT_TRUE(RequiredEscrow(model).IsZero());
  EXPECT_TRUE(EscrowIsDeterrent(Wei(), model));

  model.gain_per_op = GweiToWei(1);
  model.ops_per_second = 0;
  EXPECT_TRUE(RequiredEscrow(model).IsZero());
}

TEST(EconomicsTest, SafetyMarginFloorsAtOne) {
  EscrowModel model;
  model.gain_per_op = GweiToWei(1);
  model.ops_per_second = 10;
  model.detection_window_seconds = 10;
  model.safety_margin = 0.1;  // Nonsense margin is clamped up to 1.
  EXPECT_EQ(RequiredEscrow(model), GweiToWei(100));
}

TEST(EconomicsTest, DeterrentThreshold) {
  EscrowModel model;
  model.gain_per_op = GweiToWei(2);
  model.ops_per_second = 100;
  model.detection_window_seconds = 10;
  model.safety_margin = 1.0;
  Wei required = RequiredEscrow(model);  // 2000 gwei.
  EXPECT_TRUE(EscrowIsDeterrent(required, model));
  EXPECT_FALSE(EscrowIsDeterrent(required - U256(1), model));
}

TEST(EconomicsTest, MaxSafeDetectionWindowInvertsTheModel) {
  EscrowModel model;
  model.gain_per_op = GweiToWei(1);
  model.ops_per_second = 1000;
  model.safety_margin = 1.0;
  // 1 ETH escrow / (1 gwei * 1000 ops/s) = 1e9 / 1e3 ... = 1e6 seconds.
  double window = MaxSafeDetectionWindow(EthToWei(1), model);
  EXPECT_NEAR(window, 1e6, 1e3);
  // Sanity: the window round-trips through RequiredEscrow.
  model.detection_window_seconds = window * 0.99;
  EXPECT_TRUE(EscrowIsDeterrent(EthToWei(1), model));
  model.detection_window_seconds = window * 1.01;
  EXPECT_FALSE(EscrowIsDeterrent(EthToWei(1), model));

  model.ops_per_second = 0;
  EXPECT_EQ(MaxSafeDetectionWindow(EthToWei(1), model), 0);
}

TEST(EconomicsTest, SampleDetectionProbabilityBounds) {
  // No tampering or no samples: nothing to detect.
  EXPECT_EQ(SampleDetectionProbability(100, 0, 10), 0.0);
  EXPECT_EQ(SampleDetectionProbability(100, 5, 0), 0.0);
  EXPECT_EQ(SampleDetectionProbability(0, 5, 5), 0.0);
  // Everything tampered or everything sampled: certain detection.
  EXPECT_EQ(SampleDetectionProbability(100, 100, 1), 1.0);
  EXPECT_EQ(SampleDetectionProbability(100, 1, 100), 1.0);
  // One tampered entry, one sample out of N: probability 1/N.
  EXPECT_NEAR(SampleDetectionProbability(100, 1, 1), 0.01, 1e-12);
  // Monotone in the sample size.
  double prev = 0;
  for (uint32_t s = 1; s < 100; s += 7) {
    double p = SampleDetectionProbability(100, 3, s);
    EXPECT_GE(p, prev);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
  // Half sampled, one tampered: exactly 1/2.
  EXPECT_NEAR(SampleDetectionProbability(10, 1, 5), 0.5, 1e-12);
}

TEST(EconomicsTest, SampledAuditDetectsRootEquivocationCertainly) {
  // Root-level lies (equivocation/omission) hit every sample, so even a
  // 1-entry sample per position detects them.
  DeploymentConfig config;
  config.node.batch_size = 8;
  config.node.byzantine_mode = ByzantineMode::kEquivocateRoot;
  auto d = Deployment::Create(config);
  ASSERT_TRUE(d.ok());
  auto& pub = (*d)->publisher();
  std::vector<std::pair<Bytes, Bytes>> kvs;
  for (int i = 0; i < 16; ++i) {
    kvs.emplace_back(ToBytes("k" + std::to_string(i)), ToBytes("v"));
  }
  ASSERT_TRUE(pub.Publish(pub.MakeRequests(kvs)).ok());
  (*d)->AdvanceBlocks(4);

  AuditorClient auditor = (*d)->MakeAuditor(3);
  auto report = auditor.AuditSample(0, 1, /*samples_per_position=*/1,
                                    /*seed=*/77);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->entries_checked, 2u);  // One sample per position.
  EXPECT_EQ(report->onchain_mismatches, 2u);
  EXPECT_FALSE(report->Clean());
}

TEST(EconomicsTest, SampledAuditOnHonestLogIsCleanAndCheap) {
  DeploymentConfig config;
  config.node.batch_size = 16;
  auto d = Deployment::Create(config);
  ASSERT_TRUE(d.ok());
  auto& pub = (*d)->publisher();
  std::vector<std::pair<Bytes, Bytes>> kvs;
  for (int i = 0; i < 48; ++i) {
    kvs.emplace_back(ToBytes("k" + std::to_string(i)), ToBytes("v"));
  }
  ASSERT_TRUE(pub.Publish(pub.MakeRequests(kvs)).ok());
  (*d)->AdvanceBlocks(4);

  AuditorClient auditor = (*d)->MakeAuditor(4);
  auto report = auditor.AuditSample(0, 2, 4, 99);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->entries_checked, 12u);  // 4 of 16 per position.
  EXPECT_TRUE(report->Clean());
  // Oversampling degenerates to a full read.
  auto full = auditor.AuditSample(0, 2, 100, 99);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->entries_checked, 48u);
  // Guards.
  EXPECT_FALSE(auditor.AuditSample(2, 0, 4, 1).ok());
  EXPECT_FALSE(auditor.AuditSample(0, 2, 0, 1).ok());
}

TEST(EconomicsTest, GasPriceVolatilityMovesFees) {
  ChainConfig config;
  config.gas_price_volatility = 0.5;
  SimClock clock(0);
  Blockchain chain(config, &clock);
  Address alice = KeyPair::FromSeed(1).address();
  Address bob = KeyPair::FromSeed(2).address();
  chain.Fund(alice, EthToWei(100));

  std::set<std::string> fees;
  for (int i = 0; i < 6; ++i) {
    Transaction tx;
    tx.from = alice;
    tx.to = bob;
    tx.value = U256(1);
    auto id = chain.Submit(tx);
    ASSERT_TRUE(id.ok());
    clock.AdvanceSeconds(13);
    chain.PumpUntilNow();
    auto receipt = chain.GetReceipt(id.value());
    ASSERT_TRUE(receipt.ok());
    fees.insert(receipt->fee.ToDecimal());
    // Price stays within the +/-50% band.
    Wei price = chain.CurrentGasPrice();
    EXPECT_GE(price, GweiToWei(50));
    EXPECT_LE(price, GweiToWei(150));
  }
  // Identical transactions paid different fees across blocks.
  EXPECT_GT(fees.size(), 1u);

  // With volatility off the price is constant.
  SimClock clock2(0);
  Blockchain stable(ChainConfig{}, &clock2);
  EXPECT_EQ(stable.CurrentGasPrice(), GweiToWei(100));
  clock2.AdvanceSeconds(130);
  stable.PumpUntilNow();
  EXPECT_EQ(stable.CurrentGasPrice(), GweiToWei(100));
}

}  // namespace
}  // namespace wedge
