#include "chain/fault_injector.h"

#include <gtest/gtest.h>

#include "chain/blockchain.h"

namespace wedge {
namespace {

class FaultInjectorTest : public ::testing::Test {
 protected:
  FaultInjectorTest() : clock_(0), chain_(ChainConfig{}, &clock_) {
    alice_ = KeyPair::FromSeed(1).address();
    bob_ = KeyPair::FromSeed(2).address();
    chain_.Fund(alice_, EthToWei(100));
  }

  Transaction Transfer() {
    Transaction tx;
    tx.from = alice_;
    tx.to = bob_;
    tx.value = EthToWei(1);
    return tx;
  }

  void MineOneBlock() {
    clock_.AdvanceSeconds(chain_.config().block_interval_seconds);
    chain_.PumpUntilNow();
  }

  SimClock clock_;
  Blockchain chain_;
  Address alice_, bob_;
};

TEST_F(FaultInjectorTest, DefaultConfigInjectsNothing) {
  FaultInjector injector(FaultConfig{});
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(injector.ShouldInject(FaultType::kDropTx));
    EXPECT_FALSE(injector.ShouldInject(FaultType::kRevertTx));
  }
  EXPECT_EQ(injector.stats().txs_dropped, 0u);
}

TEST_F(FaultInjectorTest, ScheduleTakesPrecedenceOverProbability) {
  FaultConfig config;
  config.drop_probability = 0.0;
  FaultInjector injector(config);
  injector.Schedule(FaultType::kDropTx, 2);
  EXPECT_EQ(injector.ScheduledCount(FaultType::kDropTx), 2);
  EXPECT_TRUE(injector.ShouldInject(FaultType::kDropTx));
  EXPECT_TRUE(injector.ShouldInject(FaultType::kDropTx));
  EXPECT_FALSE(injector.ShouldInject(FaultType::kDropTx));
  EXPECT_EQ(injector.ScheduledCount(FaultType::kDropTx), 0);
  EXPECT_EQ(injector.stats().txs_dropped, 2u);
}

TEST_F(FaultInjectorTest, SeededDecisionsAreDeterministic) {
  FaultConfig config;
  config.seed = 42;
  config.drop_probability = 0.5;
  FaultInjector a(config);
  FaultInjector b(config);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.ShouldInject(FaultType::kDropTx),
              b.ShouldInject(FaultType::kDropTx));
  }
  EXPECT_EQ(a.stats().txs_dropped, b.stats().txs_dropped);
  EXPECT_GT(a.stats().txs_dropped, 0u);
  EXPECT_LT(a.stats().txs_dropped, 200u);
}

TEST_F(FaultInjectorTest, RegistryCountersMirrorStats) {
  Telemetry telemetry(&clock_);
  FaultInjector injector(FaultConfig{}, &telemetry);
  injector.Schedule(FaultType::kDropTx, 2);
  injector.Schedule(FaultType::kRevertTx, 1);
  injector.Schedule(FaultType::kDelayBlock, 1);
  injector.Schedule(FaultType::kGasSpike, 1);
  EXPECT_TRUE(injector.ShouldInject(FaultType::kDropTx));
  EXPECT_TRUE(injector.ShouldInject(FaultType::kDropTx));
  EXPECT_TRUE(injector.ShouldInject(FaultType::kRevertTx));
  EXPECT_TRUE(injector.ShouldInject(FaultType::kDelayBlock));
  EXPECT_TRUE(injector.ShouldInject(FaultType::kGasSpike));
  injector.RecordEviction();

  FaultStats stats = injector.stats();
  MetricsSnapshot snap = telemetry.metrics.Snapshot();
  EXPECT_EQ(snap.CounterValue("wedge.faults.txs_dropped"), stats.txs_dropped);
  EXPECT_EQ(snap.CounterValue("wedge.faults.txs_dropped"), 2u);
  EXPECT_EQ(snap.CounterValue("wedge.faults.txs_reverted"),
            stats.txs_reverted);
  EXPECT_EQ(snap.CounterValue("wedge.faults.txs_evicted"), stats.txs_evicted);
  EXPECT_EQ(snap.CounterValue("wedge.faults.blocks_delayed"),
            stats.blocks_delayed);
  EXPECT_EQ(snap.CounterValue("wedge.faults.gas_spikes"), stats.gas_spikes);

  // Every injection also leaves a typed fault span in the trace.
  size_t fault_events = 0;
  for (const TraceEvent& ev : telemetry.tracer.Events()) {
    if (ev.stage == trace_stage::kFault) {
      ++fault_events;
      EXPECT_NE(ev.note.find("type="), std::string::npos);
    }
  }
  EXPECT_EQ(fault_events, 6u);
}

TEST_F(FaultInjectorTest, DroppedTxGetsIdButNeverMines) {
  chain_.fault_injector()->Schedule(FaultType::kDropTx, 1);
  auto dropped = chain_.Submit(Transfer());
  ASSERT_TRUE(dropped.ok());  // Acknowledged like a real RPC node.
  auto kept = chain_.Submit(Transfer());
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(chain_.MempoolSize(), 1u);

  MineOneBlock();
  EXPECT_FALSE(chain_.GetReceipt(dropped.value()).ok());
  EXPECT_TRUE(chain_.GetReceipt(kept.value()).ok());
  EXPECT_EQ(chain_.fault_injector()->stats().txs_dropped, 1u);
}

TEST_F(FaultInjectorTest, EvictedTxLeavesMempoolAfterDeadline) {
  chain_.fault_injector()->Schedule(FaultType::kEvictTx, 1);
  auto id = chain_.Submit(Transfer());
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(chain_.MempoolSize(), 1u);

  // The eviction sweep runs at mining; the transaction would otherwise
  // be included in the very next block, so delay its inclusion past the
  // eviction deadline with scheduled empty blocks.
  chain_.fault_injector()->Schedule(FaultType::kDelayBlock, 2);
  MineOneBlock();
  MineOneBlock();
  MineOneBlock();
  EXPECT_EQ(chain_.MempoolSize(), 0u);
  EXPECT_FALSE(chain_.GetReceipt(id.value()).ok());
  EXPECT_EQ(chain_.fault_injector()->stats().txs_evicted, 1u);
}

TEST_F(FaultInjectorTest, ForcedRevertConsumesGasButRollsBack) {
  chain_.fault_injector()->Schedule(FaultType::kRevertTx, 1);
  Wei bob_before = chain_.BalanceOf(bob_);
  auto id = chain_.Submit(Transfer());
  ASSERT_TRUE(id.ok());
  MineOneBlock();
  auto receipt = chain_.GetReceipt(id.value());
  ASSERT_TRUE(receipt.ok());
  EXPECT_FALSE(receipt->success);
  EXPECT_EQ(receipt->revert_reason, "fault-injected revert");
  EXPECT_GT(receipt->gas_used, 0u);
  EXPECT_EQ(chain_.BalanceOf(bob_), bob_before);  // Value refunded.
  EXPECT_EQ(chain_.fault_injector()->stats().txs_reverted, 1u);
}

TEST_F(FaultInjectorTest, DelayedBlockMinesEmpty) {
  chain_.fault_injector()->Schedule(FaultType::kDelayBlock, 1);
  auto id = chain_.Submit(Transfer());
  ASSERT_TRUE(id.ok());
  MineOneBlock();  // Delayed: empty block.
  EXPECT_FALSE(chain_.GetReceipt(id.value()).ok());
  EXPECT_EQ(chain_.MempoolSize(), 1u);
  MineOneBlock();  // Back to normal.
  EXPECT_TRUE(chain_.GetReceipt(id.value()).ok());
  EXPECT_EQ(chain_.fault_injector()->stats().blocks_delayed, 1u);
}

TEST_F(FaultInjectorTest, GasSpikeIsTransientAndStallsLowBids) {
  Wei base = chain_.config().gas_price;

  // A transaction bidding exactly the base price waits out the spike.
  Transaction bid_tx = Transfer();
  bid_tx.gas_price_bid = base;
  auto bid_id = chain_.Submit(bid_tx);
  ASSERT_TRUE(bid_id.ok());

  chain_.fault_injector()->Schedule(FaultType::kGasSpike, 1);
  MineOneBlock();  // Spiked block: price = base * 10.
  EXPECT_EQ(chain_.CurrentGasPrice(), base * U256(10));
  EXPECT_FALSE(chain_.GetReceipt(bid_id.value()).ok());
  EXPECT_EQ(chain_.MempoolSize(), 1u);

  MineOneBlock();  // Price is back at base; the bid is includable again.
  EXPECT_EQ(chain_.CurrentGasPrice(), base);
  auto receipt = chain_.GetReceipt(bid_id.value());
  ASSERT_TRUE(receipt.ok());
  EXPECT_TRUE(receipt->success);
  // The bidder pays its bid, not the block price at submission time.
  EXPECT_EQ(receipt->fee, U256(receipt->gas_used) * base);
  EXPECT_EQ(chain_.fault_injector()->stats().gas_spikes, 1u);
}

}  // namespace
}  // namespace wedge
