// FaultyTransport is the seed of every chaos run's determinism: same
// (seed, call sequence) must mean the same fault schedule, and scripted
// partitions must override the probabilistic spec absolutely.

#include "net/fault_transport.h"

#include <vector>

#include <gtest/gtest.h>

namespace wedge {
namespace {

TEST(FaultyTransportTest, SameSeedSameSchedule) {
  FaultSpec spec;
  spec.seed = 42;
  spec.connect_refuse_rate = 0.3;
  spec.send_drop_rate = 0.2;
  spec.send_delay_rate = 0.25;
  spec.send_delay_min = 10;
  spec.send_delay_max = 500;
  spec.send_duplicate_rate = 0.1;

  auto run = [&spec]() {
    FaultyTransport transport(spec);
    std::vector<int> trace;
    for (int i = 0; i < 200; ++i) {
      trace.push_back(transport.AllowConnect("a:1") ? 1 : 0);
      auto d = transport.OnSend("a:1");
      trace.push_back(static_cast<int>(d.action));
      trace.push_back(static_cast<int>(d.delay));
    }
    return trace;
  };
  EXPECT_EQ(run(), run());

  FaultSpec other = spec;
  other.seed = 43;
  FaultyTransport transport(other);
  std::vector<int> trace;
  for (int i = 0; i < 200; ++i) {
    trace.push_back(transport.AllowConnect("a:1") ? 1 : 0);
    auto d = transport.OnSend("a:1");
    trace.push_back(static_cast<int>(d.action));
    trace.push_back(static_cast<int>(d.delay));
  }
  EXPECT_NE(run(), trace);
}

TEST(FaultyTransportTest, ZeroRatesNeverInterfere) {
  FaultyTransport transport(FaultSpec{});
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(transport.AllowConnect("a:1"));
    auto d = transport.OnSend("a:1");
    EXPECT_EQ(d.action, FaultyTransport::SendAction::kDeliver);
    EXPECT_EQ(d.delay, 0);
  }
  auto c = transport.counters();
  EXPECT_EQ(c.refused_connects, 0u);
  EXPECT_EQ(c.dropped_sends, 0u);
  EXPECT_EQ(c.delayed_sends, 0u);
  EXPECT_EQ(c.duplicated_sends, 0u);
}

TEST(FaultyTransportTest, FullRatesAlwaysFire) {
  FaultSpec spec;
  spec.connect_refuse_rate = 1.0;
  spec.send_drop_rate = 1.0;
  FaultyTransport transport(spec);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(transport.AllowConnect("a:1"));
    EXPECT_EQ(transport.OnSend("a:1").action,
              FaultyTransport::SendAction::kDrop);
  }
  auto c = transport.counters();
  EXPECT_EQ(c.refused_connects, 50u);
  EXPECT_EQ(c.dropped_sends, 50u);
}

TEST(FaultyTransportTest, DelayBoundsRespected) {
  FaultSpec spec;
  spec.send_delay_rate = 1.0;
  spec.send_delay_min = 100;
  spec.send_delay_max = 200;
  FaultyTransport transport(spec);
  for (int i = 0; i < 100; ++i) {
    auto d = transport.OnSend("a:1");
    EXPECT_GE(d.delay, 100);
    EXPECT_LE(d.delay, 200);
  }
  EXPECT_EQ(transport.counters().delayed_sends, 100u);
}

TEST(FaultyTransportTest, PartitionOverridesCleanSpec) {
  FaultyTransport transport(FaultSpec{});
  EXPECT_FALSE(transport.IsPartitioned("a:1"));
  transport.Partition("a:1");
  EXPECT_TRUE(transport.IsPartitioned("a:1"));
  // Inside the partition: every dial refused, every send dropped —
  // deterministically, regardless of the zero-rate spec.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(transport.AllowConnect("a:1"));
    EXPECT_EQ(transport.OnSend("a:1").action,
              FaultyTransport::SendAction::kDrop);
  }
  // Other endpoints are untouched.
  EXPECT_TRUE(transport.AllowConnect("b:2"));
  EXPECT_EQ(transport.OnSend("b:2").action,
            FaultyTransport::SendAction::kDeliver);

  transport.Heal("a:1");
  EXPECT_FALSE(transport.IsPartitioned("a:1"));
  EXPECT_TRUE(transport.AllowConnect("a:1"));
}

TEST(FaultyTransportTest, WildcardFreezesEverything) {
  FaultyTransport transport(FaultSpec{});
  transport.Partition("*");
  EXPECT_TRUE(transport.IsPartitioned("a:1"));
  EXPECT_TRUE(transport.IsPartitioned("anything"));
  EXPECT_FALSE(transport.AllowConnect("b:2"));
  EXPECT_EQ(transport.OnSend("c:3").action,
            FaultyTransport::SendAction::kDrop);
  transport.HealAll();
  EXPECT_FALSE(transport.IsPartitioned("a:1"));
  EXPECT_TRUE(transport.AllowConnect("b:2"));
}

}  // namespace
}  // namespace wedge
