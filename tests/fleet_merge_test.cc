// Fleet-merge determinism tests: the JSONL metrics parser and the
// cross-process snapshot merge fleetmon is built on. The merge rules are
// pinned against hand-built snapshots — counters/gauges sum name-wise,
// histogram buckets add with min/max folding, quantiles of the merged
// distribution are recomputed from the merged buckets (never averaged) —
// and merging must be order-independent and lossless through the
// export -> parse round trip.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/export.h"
#include "telemetry/fleet_merge.h"
#include "telemetry/metrics.h"

namespace wedge {
namespace {

MetricsSnapshot RoundTrip(const MetricsRegistry& registry) {
  auto parsed = ParseMetricsJsonLines(MetricsToJsonLines(registry.Snapshot()));
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed.ok() ? *parsed : MetricsSnapshot{};
}

TEST(FleetMergeTest, ParseRoundTripsCountersGaugesHistograms) {
  MetricsRegistry registry;
  registry.GetCounter("wedge.rpc.requests")->Add(11);
  registry.GetGauge("wedge.chain.mempool")->Set(-3);
  Histogram* h = registry.GetHistogram("wedge.rpc.append_us");
  h->Record(5);
  h->Record(700);
  h->Record(700);

  MetricsSnapshot parsed = RoundTrip(registry);
  EXPECT_EQ(parsed.CounterValue("wedge.rpc.requests"), 11u);
  ASSERT_EQ(parsed.gauges.size(), 1u);
  EXPECT_EQ(parsed.gauges[0].second, -3);
  const HistogramSnapshot* hist = parsed.FindHistogram("wedge.rpc.append_us");
  ASSERT_NE(hist, nullptr);
  HistogramSnapshot direct = h->Snapshot();
  EXPECT_EQ(hist->count, direct.count);
  EXPECT_EQ(hist->sum, direct.sum);
  EXPECT_EQ(hist->min, direct.min);
  EXPECT_EQ(hist->max, direct.max);
  EXPECT_EQ(hist->buckets, direct.buckets);  // Lossless: exact buckets.
}

TEST(FleetMergeTest, SpanAndProseLinesAreSkipped) {
  std::string text =
      "{\"kind\": \"span\", \"seq\": 0, \"t_us\": 1, \"log_id\": 2, "
      "\"stage\": \"ingest\"}\n"
      "not json at all\n"
      "{\"kind\": \"counter\", \"name\": \"wedge.x\", \"value\": 4}\n";
  auto snap = ParseMetricsJsonLines(text);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap->CounterValue("wedge.x"), 4u);
}

TEST(FleetMergeTest, StructurallyBrokenMetricLineIsTyped) {
  auto snap =
      ParseMetricsJsonLines("{\"kind\": \"counter\", \"name\": \"wedge.x\"}\n");
  EXPECT_FALSE(snap.ok());  // Counter without a value: corrupt scrape.
}

TEST(FleetMergeTest, MergeMatchesHandBuiltSnapshot) {
  MetricsRegistry a, b;
  a.GetCounter("wedge.rpc.requests")->Add(30);
  b.GetCounter("wedge.rpc.requests")->Add(10);
  b.GetCounter("wedge.rpc.responses_error")->Add(2);  // Only on b.
  a.GetGauge("wedge.chain.mempool")->Set(5);
  b.GetGauge("wedge.chain.mempool")->Set(7);
  Histogram* ha = a.GetHistogram("wedge.rpc.append_us");
  Histogram* hb = b.GetHistogram("wedge.rpc.append_us");
  ha->Record(10);
  ha->Record(100);
  hb->Record(1000);

  // The reference: one histogram fed every observation from both sides.
  MetricsRegistry reference;
  Histogram* href = reference.GetHistogram("wedge.rpc.append_us");
  href->Record(10);
  href->Record(100);
  href->Record(1000);

  MetricsSnapshot merged = MergeSnapshots({RoundTrip(a), RoundTrip(b)});
  EXPECT_EQ(merged.CounterValue("wedge.rpc.requests"), 40u);
  EXPECT_EQ(merged.CounterValue("wedge.rpc.responses_error"), 2u);
  ASSERT_EQ(merged.gauges.size(), 1u);
  EXPECT_EQ(merged.gauges[0].second, 12);  // Gauges sum across the fleet.

  const HistogramSnapshot* h = merged.FindHistogram("wedge.rpc.append_us");
  ASSERT_NE(h, nullptr);
  HistogramSnapshot expect = href->Snapshot();
  EXPECT_EQ(h->count, expect.count);
  EXPECT_EQ(h->sum, expect.sum);
  EXPECT_EQ(h->min, expect.min);
  EXPECT_EQ(h->max, expect.max);
  EXPECT_EQ(h->buckets, expect.buckets);
  // Quantiles recomputed from merged buckets equal single-histogram ones.
  EXPECT_EQ(h->ValueAtQuantile(0.5), expect.ValueAtQuantile(0.5));
  EXPECT_EQ(h->ValueAtQuantile(0.99), expect.ValueAtQuantile(0.99));
}

TEST(FleetMergeTest, MergeIsOrderIndependent) {
  MetricsRegistry a, b, c;
  a.GetCounter("wedge.node.entries_ingested")->Add(100);
  b.GetCounter("wedge.node.entries_ingested")->Add(50);
  c.GetCounter("wedge.node.entries_ingested")->Add(25);
  a.GetHistogram("wedge.rpc.read_us")->Record(10);
  b.GetHistogram("wedge.rpc.read_us")->Record(20);
  c.GetHistogram("wedge.rpc.read_us")->Record(10000);

  MetricsSnapshot abc =
      MergeSnapshots({RoundTrip(a), RoundTrip(b), RoundTrip(c)});
  MetricsSnapshot cba =
      MergeSnapshots({RoundTrip(c), RoundTrip(b), RoundTrip(a)});
  EXPECT_EQ(abc.counters, cba.counters);
  ASSERT_EQ(abc.histograms.size(), cba.histograms.size());
  for (size_t i = 0; i < abc.histograms.size(); ++i) {
    EXPECT_EQ(abc.histograms[i].first, cba.histograms[i].first);
    EXPECT_EQ(abc.histograms[i].second.buckets,
              cba.histograms[i].second.buckets);
    EXPECT_EQ(abc.histograms[i].second.sum, cba.histograms[i].second.sum);
  }
}

TEST(FleetMergeTest, MergeOfNothingIsEmpty) {
  MetricsSnapshot merged = MergeSnapshots({});
  EXPECT_TRUE(merged.counters.empty());
  EXPECT_TRUE(merged.histograms.empty());
}

TEST(FleetMergeTest, CounterSkewMeasuresImbalance) {
  MetricsRegistry a, b;
  a.GetCounter("wedge.node.entries_ingested")->Add(30);
  b.GetCounter("wedge.node.entries_ingested")->Add(10);
  std::vector<MetricsSnapshot> snaps = {RoundTrip(a), RoundTrip(b)};
  // Peak 30 over mean 20.
  EXPECT_DOUBLE_EQ(CounterSkew(snaps, "wedge.node.entries_ingested"), 1.5);
  // Absent counter: no signal, not a division by zero.
  EXPECT_DOUBLE_EQ(CounterSkew(snaps, "wedge.no.such"), 0.0);

  MetricsRegistry even1, even2;
  even1.GetCounter("wedge.x")->Add(10);
  even2.GetCounter("wedge.x")->Add(10);
  EXPECT_DOUBLE_EQ(CounterSkew({RoundTrip(even1), RoundTrip(even2)},
                               "wedge.x"),
                   1.0);
}

}  // namespace
}  // namespace wedge
