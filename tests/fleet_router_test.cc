// FleetRouter failover tests against one live sharded RpcServer plus one
// deliberately dead endpoint: the dead shard's breaker must trip and
// convert hangs into immediate typed kUnavailable fast-fails, the healthy
// shard must keep serving at full speed, and a healed shard must be
// readmitted through the half-open probe.
//
// Set WEDGE_SKIP_SOCKET_TESTS=1 to skip at runtime.

#include "shard/fleet_router.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <memory>

#include <gtest/gtest.h>

#include "net/fault_transport.h"
#include "rpc/rpc_server.h"
#include "shard/shard_rpc.h"
#include "shard/sharded_engine.h"

namespace wedge {
namespace {

bool SocketTestsDisabled() {
  const char* skip = std::getenv("WEDGE_SKIP_SOCKET_TESTS");
  return skip != nullptr && skip[0] == '1';
}

/// A port that refuses connections: bound but never listened on. Holding
/// the fd keeps the port reserved for the test's lifetime.
class DeadPort {
 public:
  DeadPort() {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      socklen_t len = sizeof(addr);
      getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
      port_ = ntohs(addr.sin_port);
    }
  }
  ~DeadPort() {
    if (fd_ >= 0) close(fd_);
  }
  uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

class FleetRouterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (SocketTestsDisabled()) {
      GTEST_SKIP() << "WEDGE_SKIP_SOCKET_TESTS=1";
    }
    ShardedDeploymentConfig config;
    config.engine.num_shards = 1;
    config.engine.node.batch_size = 4;
    config.engine.node.worker_threads = 1;
    config.engine.forest_stage2 = true;
    auto d = ShardedDeployment::Create(config);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    deployment_ = std::move(d).value();
    server_key_ = std::make_unique<KeyPair>(
        KeyPair::FromSeed(config.engine_key_seed));
    ShardedLogEngine& engine = deployment_->engine();
    server_ = std::make_unique<RpcServer>(
        RpcServer::Handler([&engine](std::string_view op, const Bytes& body) {
          return DispatchEngineRpc(engine, op, body);
        }),
        *server_key_, RpcServerConfig{}, &deployment_->telemetry());
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Shutdown();
  }

  FleetRouterConfig BaseConfig() {
    FleetRouterConfig config;
    config.client.rpc_timeout = 2 * kMicrosPerSecond;
    config.client.max_call_attempts = 2;
    config.client.retry_backoff_min = 5 * kMicrosPerMilli;
    config.client.retry_backoff_max = 20 * kMicrosPerMilli;
    config.breaker_failure_threshold = 2;
    config.breaker_open_duration = 200 * kMicrosPerMilli;
    return config;
  }

  /// First tenant in [0, 64) that the router maps to `shard`.
  static TenantId TenantOn(const FleetRouter& router, uint32_t shard) {
    for (TenantId t = 0; t < 64; ++t) {
      if (router.ShardFor(t) == shard) return t;
    }
    ADD_FAILURE() << "no tenant maps to shard " << shard;
    return 0;
  }

  std::vector<AppendRequest> MakeBatch(int n) {
    std::vector<AppendRequest> out;
    for (int i = 0; i < n; ++i) {
      out.push_back(AppendRequest::Make(publisher_, seq_++,
                                        ToBytes("k" + std::to_string(i)),
                                        ToBytes("v")));
    }
    return out;
  }

  std::unique_ptr<ShardedDeployment> deployment_;
  std::unique_ptr<KeyPair> server_key_;
  std::unique_ptr<RpcServer> server_;
  KeyPair publisher_ = KeyPair::FromSeed(0xC11E);
  uint64_t seq_ = 0;
};

TEST_F(FleetRouterTest, BreakerIsolatesDeadShardHealthyShardUnaffected) {
  DeadPort dead;
  ASSERT_NE(dead.port(), 0);
  FleetRouterConfig config = BaseConfig();
  config.endpoints = {{"127.0.0.1", server_->port()},
                      {"127.0.0.1", dead.port()}};
  FleetRouter router(KeyPair::FromSeed(0xC11E), server_key_->address(),
                     config);
  // Connect succeeds with one of two shards reachable.
  ASSERT_TRUE(router.Connect().ok());

  TenantId live_tenant = TenantOn(router, 0);
  TenantId dead_tenant = TenantOn(router, 1);

  // Trip the dead shard's breaker: each failed call (kUnavailable after
  // the client's own retries) counts one strike.
  for (int i = 0; i < config.breaker_failure_threshold; ++i) {
    auto r = router.Append(dead_tenant, MakeBatch(2));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), Code::kUnavailable)
        << r.status().ToString();
  }
  EXPECT_EQ(router.Health(1), FleetRouter::ShardHealth::kOpen);
  EXPECT_GE(router.breaker_trips(), 1u);
  EXPECT_GE(router.retries(), 1u);

  // While open: immediate typed fast-fail naming the shard, no dialing.
  uint64_t fast_fails_before = router.fast_fails();
  auto fast = router.Append(dead_tenant, MakeBatch(2));
  ASSERT_FALSE(fast.ok());
  EXPECT_EQ(fast.status().code(), Code::kUnavailable);
  EXPECT_NE(fast.status().message().find("shard"), std::string::npos)
      << fast.status().ToString();
  EXPECT_GT(router.fast_fails(), fast_fails_before);

  // The healthy shard is untouched by its neighbour's breaker.
  auto ok = router.Append(live_tenant, MakeBatch(4));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  ASSERT_EQ(ok->size(), 4u);
  for (const auto& r : *ok) {
    EXPECT_TRUE(r.Verify(server_key_->address()));
  }
  EXPECT_EQ(router.Health(0), FleetRouter::ShardHealth::kClosed);
  router.Close();
}

TEST_F(FleetRouterTest, HalfOpenProbeReclosesAfterHeal) {
  auto faults = std::make_shared<FaultyTransport>(FaultSpec{});
  FleetRouterConfig config = BaseConfig();
  config.endpoints = {{"127.0.0.1", server_->port()}};
  config.client.faults = faults;
  FleetRouter router(KeyPair::FromSeed(0xC11E), server_key_->address(),
                     config);
  ASSERT_TRUE(router.Connect().ok());
  TenantId tenant = TenantOn(router, 0);
  ASSERT_TRUE(router.Append(tenant, MakeBatch(2)).ok());

  // Partition the only shard until its breaker opens.
  std::string endpoint =
      "127.0.0.1:" + std::to_string(server_->port());
  faults->Partition(endpoint);
  for (int i = 0; i < config.breaker_failure_threshold; ++i) {
    auto r = router.Append(tenant, MakeBatch(2));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), Code::kUnavailable);
  }
  EXPECT_EQ(router.Health(0), FleetRouter::ShardHealth::kOpen);

  // Heal, wait out the open interval: the next call is admitted as the
  // half-open probe, succeeds, and re-closes the breaker.
  faults->HealAll();
  usleep(static_cast<useconds_t>(config.breaker_open_duration +
                                 50 * kMicrosPerMilli));
  uint64_t probes_before = router.probes();
  auto probe = router.Append(tenant, MakeBatch(2));
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_GT(router.probes(), probes_before);
  EXPECT_EQ(router.Health(0), FleetRouter::ShardHealth::kClosed);

  // And service continues normally afterwards.
  EXPECT_TRUE(router.Append(tenant, MakeBatch(2)).ok());
  router.Close();
}

}  // namespace
}  // namespace wedge
