// Cross-module integration tests: concurrent clients against one node,
// file-backed deployment with restart recovery, end-to-end flows that
// touch every library at once.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <thread>

#include "common/random.h"
#include "core/wedgeblock.h"

namespace wedge {
namespace {

TEST(IntegrationTest, ConcurrentPublishersGetDisjointIndices) {
  DeploymentConfig config;
  config.node.batch_size = 10;
  config.node.worker_threads = 2;
  auto d = Deployment::Create(config);
  ASSERT_TRUE(d.ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 30;
  std::vector<std::vector<Stage1Response>> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      KeyPair key = KeyPair::FromSeed(7000 + t);
      std::vector<AppendRequest> reqs;
      for (int i = 0; i < kPerThread; ++i) {
        reqs.push_back(AppendRequest::Make(
            key, i, ToBytes("t" + std::to_string(t)),
            ToBytes("v" + std::to_string(i))));
      }
      auto responses = (*d)->node().Append(reqs);
      ASSERT_TRUE(responses.ok());
      results[t] = std::move(responses).value();
    });
  }
  for (auto& th : threads) th.join();

  // Every response verifies, and (log_id, offset) pairs are globally
  // unique across threads.
  std::set<std::pair<uint64_t, uint32_t>> seen;
  for (const auto& batch : results) {
    EXPECT_EQ(batch.size(), kPerThread);
    for (const auto& r : batch) {
      EXPECT_TRUE(r.Verify((*d)->node().address()));
      EXPECT_TRUE(seen.insert({r.index.log_id, r.index.offset}).second)
          << "duplicate index assigned";
    }
  }
  EXPECT_EQ(seen.size(), kThreads * kPerThread);
  EXPECT_EQ((*d)->node().stats().entries_ingested,
            static_cast<uint64_t>(kThreads * kPerThread));

  // After stage 2, every single entry is blockchain-committed.
  (*d)->AdvanceBlocks(4);
  for (const auto& batch : results) {
    for (const auto& r : batch) {
      auto check = (*d)->publisher().CheckBlockchainCommit(r);
      ASSERT_TRUE(check.ok());
      EXPECT_EQ(check.value(), CommitCheck::kBlockchainCommitted);
    }
  }
}

/// Acceptance: under a 10% stage-2 drop rate, every log position's trace
/// runs the full lifecycle and ends `confirmed`, timestamps are monotone
/// along each chain, and two runs at the same seed produce byte-identical
/// trace dumps (all tracer time comes from the SimClock).
TEST(IntegrationTest, TraceCoversEveryEntryUnderDropFaults) {
  auto run = [](std::string* dump) {
    DeploymentConfig config;
    config.node.batch_size = 5;
    config.node.worker_threads = 2;
    config.chain.faults.drop_probability = 0.10;
    config.chain.faults.seed = 0x7EAC;
    auto made = Deployment::Create(config);
    ASSERT_TRUE(made.ok());
    auto d = std::move(made).value();

    auto& pub = d->publisher();
    std::vector<std::pair<Bytes, Bytes>> kvs;
    for (int i = 0; i < 40; ++i) {
      kvs.emplace_back(ToBytes("k" + std::to_string(i)), ToBytes("v"));
    }
    auto responses = pub.Publish(pub.MakeRequests(kvs));
    ASSERT_TRUE(responses.ok());
    for (int i = 0; i < 128 && d->node().UncommittedDigests() > 0; ++i) {
      d->AdvanceBlocks(1);
    }
    ASSERT_EQ(d->node().UncommittedDigests(), 0u);  // Retries landed all.

    // Every entry's position has a complete lifecycle chain.
    Tracer& tracer = d->telemetry().tracer;
    std::set<uint64_t> positions;
    for (const Stage1Response& r : responses.value()) {
      positions.insert(r.index.log_id);
    }
    EXPECT_EQ(positions.size(), 8u);  // 40 entries / batch_size 5.
    for (uint64_t log_id : positions) {
      EXPECT_TRUE(tracer.ChainEndsConfirmed(log_id)) << "log " << log_id;
      auto events = tracer.EventsFor(log_id);
      ASSERT_GE(events.size(), 6u) << "log " << log_id;
      EXPECT_EQ(events.front().stage, trace_stage::kIngest);
      EXPECT_EQ(events.back().stage, trace_stage::kConfirmed);
      for (size_t i = 1; i < events.size(); ++i) {
        EXPECT_GE(events[i].at, events[i - 1].at)
            << "log " << log_id << " event " << i;
        EXPECT_GT(events[i].seq, events[i - 1].seq);
      }
    }
    *dump = tracer.ToJsonLines();
  };

  std::string first, second;
  run(&first);
  run(&second);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);  // Same seed -> identical traces.
}

TEST(IntegrationTest, ConcurrentReadsWhileAppending) {
  DeploymentConfig config;
  config.node.batch_size = 5;
  config.node.worker_threads = 2;
  auto d = Deployment::Create(config);
  ASSERT_TRUE(d.ok());
  auto& pub = (*d)->publisher();
  std::vector<std::pair<Bytes, Bytes>> kvs;
  for (int i = 0; i < 25; ++i) {
    kvs.emplace_back(ToBytes("k" + std::to_string(i)), ToBytes("v"));
  }
  ASSERT_TRUE(pub.Publish(pub.MakeRequests(kvs)).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> reads_ok{0};
  std::thread reader([&] {
    Rng rng(1);
    while (!stop.load()) {
      EntryIndex idx{rng.Uniform(5), static_cast<uint32_t>(rng.Uniform(5))};
      auto r = (*d)->node().ReadOne(idx);
      if (r.ok() && r->Verify((*d)->node().address())) {
        reads_ok.fetch_add(1);
      }
    }
  });
  // Appends continue while the reader hammers the node.
  for (int round = 0; round < 3; ++round) {
    std::vector<std::pair<Bytes, Bytes>> more;
    for (int i = 0; i < 10; ++i) {
      more.emplace_back(ToBytes("r" + std::to_string(round)), ToBytes("x"));
    }
    ASSERT_TRUE(pub.Publish(pub.MakeRequests(more)).ok());
  }
  stop.store(true);
  reader.join();
  EXPECT_GT(reads_ok.load(), 0);
}

TEST(IntegrationTest, FileBackedDeploymentSurvivesRestart) {
  std::string path = std::filesystem::temp_directory_path() /
                     ("wedge_integration_" + std::to_string(::getpid()));
  std::filesystem::remove(path);

  Hash256 committed_root;
  {
    DeploymentConfig config;
    config.node.batch_size = 4;
    config.log_path = path;
    auto d = Deployment::Create(config);
    ASSERT_TRUE(d.ok());
    auto& pub = (*d)->publisher();
    auto responses = pub.Publish(pub.MakeRequests({
        {ToBytes("persist/1"), ToBytes("one")},
        {ToBytes("persist/2"), ToBytes("two")},
        {ToBytes("persist/3"), ToBytes("three")},
        {ToBytes("persist/4"), ToBytes("four")},
    }));
    ASSERT_TRUE(responses.ok());
    committed_root = responses->front().proof.mroot;
  }

  // "Restart": a fresh node over the same log file recovers the data and
  // serves reads whose root matches what clients already hold.
  {
    DeploymentConfig config;
    config.node.batch_size = 4;
    config.log_path = path;
    auto d = Deployment::Create(config);
    ASSERT_TRUE(d.ok());
    EXPECT_EQ((*d)->node().LogPositions(), 1u);
    auto read = (*d)->node().ReadOne(EntryIndex{0, 1});
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read->proof.mroot, committed_root);
    auto req = AppendRequest::Deserialize(read->entry);
    ASSERT_TRUE(req.ok());
    EXPECT_EQ(ToString(req->value), "two");
  }
  std::filesystem::remove(path);
}

TEST(IntegrationTest, ReplicatedDeploymentServesAfterIngest) {
  DeploymentConfig config;
  config.node.batch_size = 6;
  config.replication_followers = 2;
  auto d = Deployment::Create(config);
  ASSERT_TRUE(d.ok());
  auto& pub = (*d)->publisher();
  std::vector<std::pair<Bytes, Bytes>> kvs;
  for (int i = 0; i < 12; ++i) {
    kvs.emplace_back(ToBytes("rep" + std::to_string(i)), ToBytes("v"));
  }
  auto responses = pub.Publish(pub.MakeRequests(kvs));
  ASSERT_TRUE(responses.ok());
  EXPECT_EQ((*d)->node().LogPositions(), 2u);
  auto read = (*d)->node().ReadOne(EntryIndex{1, 3});
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->Verify((*d)->node().address()));
}

TEST(IntegrationTest, TieredDeploymentServesColdReads) {
  DeploymentConfig config;
  config.node.batch_size = 4;
  config.node.tree_cache_capacity = 1;  // Force tree rebuilds from store.
  config.tiered_hot_positions = 2;
  auto d = Deployment::Create(config);
  ASSERT_TRUE(d.ok());
  ASSERT_NE((*d)->archive(), nullptr);
  auto& pub = (*d)->publisher();
  std::vector<std::pair<Bytes, Bytes>> kvs;
  for (int i = 0; i < 24; ++i) {
    kvs.emplace_back(ToBytes("t" + std::to_string(i)), ToBytes("v"));
  }
  auto responses = pub.Publish(pub.MakeRequests(kvs));
  ASSERT_TRUE(responses.ok());
  EXPECT_EQ((*d)->node().LogPositions(), 6u);
  (*d)->AdvanceBlocks(4);

  // Position 0 left the hot tier long ago; the read transparently pulls
  // it back from the archive, and the result still verifies end-to-end.
  UserClient user = (*d)->MakeUser(5);
  auto read = user.ReadVerified(EntryIndex{0, 3}, true);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
}

TEST(IntegrationTest, MultiplePublishersShareOneBatch) {
  // Entries from different publishers interleave within one log
  // position; each publisher's stage-1 response only vouches for its own
  // leaf (§4.3: clients need not verify other operations in the batch).
  DeploymentConfig config;
  config.node.batch_size = 6;
  auto d = Deployment::Create(config);
  ASSERT_TRUE(d.ok());

  KeyPair p1 = KeyPair::FromSeed(801);
  KeyPair p2 = KeyPair::FromSeed(802);
  std::vector<AppendRequest> mixed;
  for (int i = 0; i < 3; ++i) {
    mixed.push_back(
        AppendRequest::Make(p1, i, ToBytes("p1"), ToBytes("a")));
    mixed.push_back(
        AppendRequest::Make(p2, i, ToBytes("p2"), ToBytes("b")));
  }
  auto responses = (*d)->node().Append(mixed);
  ASSERT_TRUE(responses.ok());
  ASSERT_EQ(responses->size(), 6u);
  // All share one position/root, each entry attributable to its signer.
  for (size_t i = 0; i < responses->size(); ++i) {
    EXPECT_EQ((*responses)[i].proof.log_id, 0u);
    auto req = AppendRequest::Deserialize((*responses)[i].entry);
    ASSERT_TRUE(req.ok());
    EXPECT_EQ(req->publisher, (i % 2 == 0) ? p1.address() : p2.address());
    EXPECT_TRUE(req->VerifySignature());
  }
}

TEST(IntegrationTest, GarbageEntriesDoNotAffectHonestClients) {
  // §4.3: an Offchain Node may stuff unsigned garbage into a batch; it
  // wastes its own resources but honest clients' entries still verify.
  DeploymentConfig config;
  config.node.batch_size = 4;
  config.node.verify_client_signatures = false;  // Node accepts garbage.
  auto d = Deployment::Create(config);
  ASSERT_TRUE(d.ok());

  KeyPair honest = KeyPair::FromSeed(900);
  std::vector<AppendRequest> batch;
  batch.push_back(
      AppendRequest::Make(honest, 0, ToBytes("real"), ToBytes("entry")));
  for (int i = 0; i < 3; ++i) {
    AppendRequest garbage;  // Unsigned junk injected by the node.
    garbage.publisher = Address::Zero();
    garbage.sequence = i;
    garbage.key = ToBytes("junk");
    garbage.value = ToBytes("junk");
    batch.push_back(garbage);
  }
  auto responses = (*d)->node().Append(batch);
  ASSERT_TRUE(responses.ok());
  (*d)->AdvanceBlocks(4);

  // The honest client's entry stage-1-verifies and blockchain-commits.
  const Stage1Response& mine = responses->front();
  EXPECT_TRUE(mine.Verify((*d)->node().address()));
  auto check = (*d)->publisher().CheckBlockchainCommit(mine);
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check.value(), CommitCheck::kBlockchainCommitted);
  // The garbage entries are identifiable as unsigned.
  auto junk = AppendRequest::Deserialize((*responses)[1].entry);
  ASSERT_TRUE(junk.ok());
  EXPECT_FALSE(junk->VerifySignature());
}

}  // namespace
}  // namespace wedge
