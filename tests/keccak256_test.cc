#include "crypto/keccak256.h"

#include <gtest/gtest.h>

namespace wedge {
namespace {

// Ethereum-style Keccak-256 (original Keccak padding, not SHA3).
TEST(Keccak256Test, EmptyString) {
  EXPECT_EQ(HashToHex(Keccak256::Digest("")),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470");
}

TEST(Keccak256Test, Abc) {
  EXPECT_EQ(HashToHex(Keccak256::Digest("abc")),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45");
}

TEST(Keccak256Test, Hello) {
  // Well-known Ethereum documentation example.
  EXPECT_EQ(HashToHex(Keccak256::Digest("hello")),
            "1c8aff950685c2ed4bc3174f3472287b56d9517b9c948127319a09a7a36deac8");
}

TEST(Keccak256Test, IncrementalMatchesOneShot) {
  std::string msg(1000, 'k');  // Crosses several 136-byte rate blocks.
  Hash256 oneshot = Keccak256::Digest(msg);
  Keccak256 h;
  for (size_t i = 0; i < msg.size(); i += 13) {
    h.Update(msg.substr(i, 13));
  }
  EXPECT_EQ(h.Finish(), oneshot);
}

TEST(Keccak256Test, ResetRestoresInitialState) {
  Keccak256 h;
  h.Update("garbage");
  h.Reset();
  h.Update("abc");
  EXPECT_EQ(HashToHex(h.Finish()),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45");
}

TEST(Keccak256Test, DiffersFromSha256Family) {
  // Keccak-256("") differs from SHA3-256("") — padding difference matters.
  EXPECT_NE(HashToHex(Keccak256::Digest("")),
            "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a");
}

class KeccakBoundaryTest : public ::testing::TestWithParam<int> {};

TEST_P(KeccakBoundaryTest, RateBoundaries) {
  int len = GetParam();
  std::string msg(len, 'y');
  Hash256 a = Keccak256::Digest(msg);
  Keccak256 h;
  for (char c : msg) h.Update(std::string(1, c));
  EXPECT_EQ(h.Finish(), a);
}

INSTANTIATE_TEST_SUITE_P(RateEdges, KeccakBoundaryTest,
                         ::testing::Values(0, 1, 135, 136, 137, 271, 272, 273));

}  // namespace
}  // namespace wedge
