#include "storage/log_store.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "common/random.h"
#include "merkle/merkle_tree.h"

namespace wedge {
namespace {

LogPosition MakePosition(uint64_t id, size_t entries, uint64_t seed = 7) {
  Rng rng(seed + id);
  LogPosition pos;
  pos.log_id = id;
  for (size_t i = 0; i < entries; ++i) {
    pos.data_list.push_back(rng.NextBytes(40));
  }
  pos.mroot = MerkleTree::Build(pos.data_list)->Root();
  return pos;
}

TEST(LogPositionTest, SerializationRoundTrip) {
  LogPosition pos = MakePosition(3, 5);
  auto back = LogPosition::Deserialize(pos.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->log_id, pos.log_id);
  EXPECT_EQ(back->data_list, pos.data_list);
  EXPECT_EQ(back->mroot, pos.mroot);
}

TEST(LogPositionTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(LogPosition::Deserialize(Bytes{1, 2}).ok());
  LogPosition pos = MakePosition(0, 2);
  Bytes wire = pos.Serialize();
  wire.push_back(0xAB);
  EXPECT_FALSE(LogPosition::Deserialize(wire).ok());
}

std::string TempPath(const char* tag) {
  return std::filesystem::temp_directory_path() /
         (std::string("wedge_log_test_") + tag + "_" +
          std::to_string(::getpid()));
}

// Coverage via a parameterized fixture over all store kinds.
enum class StoreKind { kMemory, kFile, kReplicated };

class LogStoreTest : public ::testing::TestWithParam<StoreKind> {
 protected:
  void SetUp() override {
    switch (GetParam()) {
      case StoreKind::kMemory:
        store_ = std::make_unique<MemoryLogStore>();
        break;
      case StoreKind::kFile: {
        path_ = TempPath("param");
        std::filesystem::remove(path_);
        auto opened = FileLogStore::Open(path_);
        ASSERT_TRUE(opened.ok()) << opened.status().ToString();
        store_ = std::move(opened).value();
        break;
      }
      case StoreKind::kReplicated: {
        std::vector<std::unique_ptr<LogStore>> followers;
        followers.push_back(std::make_unique<MemoryLogStore>());
        followers.push_back(std::make_unique<MemoryLogStore>());
        store_ = std::make_unique<ReplicatedLogStore>(
            std::make_unique<MemoryLogStore>(), std::move(followers));
        break;
      }
    }
  }

  void TearDown() override {
    store_.reset();
    if (!path_.empty()) std::filesystem::remove(path_);
  }

  std::unique_ptr<LogStore> store_;
  std::string path_;
};

TEST_P(LogStoreTest, AppendAndGet) {
  EXPECT_EQ(store_->Size(), 0u);
  LogPosition pos = MakePosition(0, 4);
  ASSERT_TRUE(store_->Append(pos).ok());
  EXPECT_EQ(store_->Size(), 1u);
  auto got = store_->Get(0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->data_list, pos.data_list);
  EXPECT_EQ(got->mroot, pos.mroot);
  EXPECT_FALSE(store_->Get(1).ok());
}

TEST_P(LogStoreTest, EnforcesConsecutiveIds) {
  EXPECT_FALSE(store_->Append(MakePosition(5, 2)).ok());
  ASSERT_TRUE(store_->Append(MakePosition(0, 2)).ok());
  EXPECT_FALSE(store_->Append(MakePosition(0, 2)).ok());  // Duplicate.
  EXPECT_FALSE(store_->Append(MakePosition(2, 2)).ok());  // Gap.
  ASSERT_TRUE(store_->Append(MakePosition(1, 2)).ok());
}

TEST_P(LogStoreTest, GetEntryAddressing) {
  ASSERT_TRUE(store_->Append(MakePosition(0, 3)).ok());
  ASSERT_TRUE(store_->Append(MakePosition(1, 3)).ok());
  auto pos1 = store_->Get(1);
  ASSERT_TRUE(pos1.ok());
  auto entry = store_->GetEntry(EntryIndex{1, 2});
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry.value(), pos1->data_list[2]);
  EXPECT_FALSE(store_->GetEntry(EntryIndex{1, 3}).ok());  // Offset OOB.
  EXPECT_FALSE(store_->GetEntry(EntryIndex{2, 0}).ok());  // Position OOB.
}

TEST_P(LogStoreTest, ScanVisitsRangeInOrder) {
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(store_->Append(MakePosition(i, 2)).ok());
  }
  std::vector<uint64_t> seen;
  ASSERT_TRUE(store_
                  ->Scan(1, 3,
                         [&](const LogPosition& p) {
                           seen.push_back(p.log_id);
                           return true;
                         })
                  .ok());
  EXPECT_EQ(seen, (std::vector<uint64_t>{1, 2, 3}));

  // Early stop.
  seen.clear();
  ASSERT_TRUE(store_
                  ->Scan(0, 4,
                         [&](const LogPosition& p) {
                           seen.push_back(p.log_id);
                           return p.log_id < 2;
                         })
                  .ok());
  EXPECT_EQ(seen, (std::vector<uint64_t>{0, 1, 2}));

  EXPECT_FALSE(store_->Scan(3, 7, [](const LogPosition&) { return true; }).ok());
  EXPECT_FALSE(store_->Scan(3, 1, [](const LogPosition&) { return true; }).ok());
}

INSTANTIATE_TEST_SUITE_P(AllStores, LogStoreTest,
                         ::testing::Values(StoreKind::kMemory, StoreKind::kFile,
                                           StoreKind::kReplicated));

TEST(FileLogStoreTest, RecoversAfterReopen) {
  std::string path = TempPath("recover");
  std::filesystem::remove(path);
  {
    auto store = FileLogStore::Open(path);
    ASSERT_TRUE(store.ok());
    for (uint64_t i = 0; i < 10; ++i) {
      ASSERT_TRUE((*store)->Append(MakePosition(i, 3)).ok());
    }
    ASSERT_TRUE((*store)->Sync().ok());
  }
  auto reopened = FileLogStore::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->Size(), 10u);
  auto pos = (*reopened)->Get(7);
  ASSERT_TRUE(pos.ok());
  EXPECT_EQ(pos->data_list, MakePosition(7, 3).data_list);
  // Can continue appending after recovery.
  ASSERT_TRUE((*reopened)->Append(MakePosition(10, 3)).ok());
  std::filesystem::remove(path);
}

TEST(FileLogStoreTest, TruncatesTornTail) {
  std::string path = TempPath("torn");
  std::filesystem::remove(path);
  {
    auto store = FileLogStore::Open(path);
    ASSERT_TRUE(store.ok());
    for (uint64_t i = 0; i < 5; ++i) {
      ASSERT_TRUE((*store)->Append(MakePosition(i, 2)).ok());
    }
    ASSERT_TRUE((*store)->Sync().ok());
  }
  // Simulate a crash mid-write: chop bytes off the end.
  auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 10);

  auto reopened = FileLogStore::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->Size(), 4u);  // Last record lost, rest intact.
  // The store keeps working after truncation.
  ASSERT_TRUE((*reopened)->Append(MakePosition(4, 2)).ok());
  EXPECT_EQ((*reopened)->Size(), 5u);
  std::filesystem::remove(path);
}

TEST(FileLogStoreTest, TornTailRoundTripReopenRecoverAppend) {
  // Full crash-recovery cycle: truncate mid-record, reopen, recover,
  // append fresh records over the truncated tail, reopen again.
  std::string path = TempPath("torn_roundtrip");
  std::filesystem::remove(path);
  {
    auto store = FileLogStore::Open(path);
    ASSERT_TRUE(store.ok());
    for (uint64_t i = 0; i < 6; ++i) {
      ASSERT_TRUE((*store)->Append(MakePosition(i, 2)).ok());
    }
    ASSERT_TRUE((*store)->Sync().ok());
  }
  // Chop into the middle of the last record (past its length prefix).
  auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 17);

  LogPosition replacement = MakePosition(5, 3, /*seed=*/99);
  {
    auto reopened = FileLogStore::Open(path);
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ((*reopened)->Size(), 5u);  // Torn record 5 truncated away.
    ASSERT_TRUE((*reopened)->Append(replacement).ok());
    ASSERT_TRUE((*reopened)->Append(MakePosition(6, 2)).ok());
    ASSERT_TRUE((*reopened)->Sync().ok());
  }
  // The rewritten tail replays cleanly: no remnants of the torn record.
  auto final_store = FileLogStore::Open(path);
  ASSERT_TRUE(final_store.ok());
  EXPECT_EQ((*final_store)->Size(), 7u);
  auto pos5 = (*final_store)->Get(5);
  ASSERT_TRUE(pos5.ok());
  EXPECT_EQ(pos5->data_list, replacement.data_list);
  EXPECT_EQ(pos5->mroot, replacement.mroot);
  std::filesystem::remove(path);
}

TEST(FileLogStoreTest, FsyncOnAppendPersistsWithoutSync) {
  std::string path = TempPath("fsync");
  std::filesystem::remove(path);
  FileLogStore::Options options;
  options.fsync_on_append = true;
  auto store = FileLogStore::Open(path, options);
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->options().fsync_on_append);
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE((*store)->Append(MakePosition(i, 2)).ok());
  }
  // No Sync(), store still open: every record is already on disk — an
  // independent replay of the file sees all three positions.
  EXPECT_GT(std::filesystem::file_size(path), 0u);
  auto replay = FileLogStore::Open(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ((*replay)->Size(), 3u);
  EXPECT_EQ((*replay)->Get(2)->mroot, MakePosition(2, 2).mroot);
  std::filesystem::remove(path);
}

TEST(FileLogStoreTest, DetectsCorruptChecksum) {
  std::string path = TempPath("corrupt");
  std::filesystem::remove(path);
  {
    auto store = FileLogStore::Open(path);
    ASSERT_TRUE(store.ok());
    for (uint64_t i = 0; i < 3; ++i) {
      ASSERT_TRUE((*store)->Append(MakePosition(i, 2)).ok());
    }
    ASSERT_TRUE((*store)->Sync().ok());
  }
  // Flip a byte in the middle of the second record's payload.
  {
    FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(std::filesystem::file_size(path) / 2),
               SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }
  auto reopened = FileLogStore::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_LT((*reopened)->Size(), 3u);  // Corruption stops the replay.
  std::filesystem::remove(path);
}

TEST(ReplicatedLogStoreTest, FollowersReceiveEveryAppend) {
  auto follower1 = std::make_unique<MemoryLogStore>();
  auto follower2 = std::make_unique<MemoryLogStore>();
  MemoryLogStore* f1 = follower1.get();
  MemoryLogStore* f2 = follower2.get();
  std::vector<std::unique_ptr<LogStore>> followers;
  followers.push_back(std::move(follower1));
  followers.push_back(std::move(follower2));
  ReplicatedLogStore store(std::make_unique<MemoryLogStore>(),
                           std::move(followers));
  EXPECT_EQ(store.follower_count(), 2u);
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(store.Append(MakePosition(i, 2)).ok());
  }
  EXPECT_EQ(store.Size(), 4u);
  EXPECT_EQ(f1->Size(), 4u);
  EXPECT_EQ(f2->Size(), 4u);
  EXPECT_EQ(f1->Get(2)->mroot, store.Get(2)->mroot);
}

}  // namespace
}  // namespace wedge
