#include "merkle/merkle_tree.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/thread_pool.h"

namespace wedge {
namespace {

std::vector<Bytes> MakeLeaves(size_t n, uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<Bytes> leaves;
  leaves.reserve(n);
  for (size_t i = 0; i < n; ++i) leaves.push_back(rng.NextBytes(64));
  return leaves;
}

TEST(MerkleTreeTest, RejectsEmptyInput) {
  EXPECT_FALSE(MerkleTree::Build(std::vector<Bytes>{}).ok());
}

TEST(MerkleTreeTest, SingleLeaf) {
  std::vector<Bytes> leaves = {ToBytes("only")};
  auto tree = MerkleTree::Build(leaves);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->LeafCount(), 1u);
  EXPECT_EQ(tree->Root(), MerkleTree::HashLeaf(leaves[0]));
  auto proof = tree->Prove(0);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(proof->path.empty());
  EXPECT_TRUE(VerifyMerkleProof(leaves[0], proof.value(), tree->Root()));
}

TEST(MerkleTreeTest, TwoLeavesRootStructure) {
  std::vector<Bytes> leaves = {ToBytes("a"), ToBytes("b")};
  auto tree = MerkleTree::Build(leaves);
  ASSERT_TRUE(tree.ok());
  Hash256 expected = MerkleTree::HashInterior(MerkleTree::HashLeaf(leaves[0]),
                                              MerkleTree::HashLeaf(leaves[1]));
  EXPECT_EQ(tree->Root(), expected);
}

TEST(MerkleTreeTest, ProveOutOfRangeFails) {
  auto tree = MerkleTree::Build(MakeLeaves(4));
  ASSERT_TRUE(tree.ok());
  EXPECT_FALSE(tree->Prove(4).ok());
  EXPECT_TRUE(tree->Prove(3).ok());
}

TEST(MerkleTreeTest, LeafOrderMatters) {
  std::vector<Bytes> leaves = MakeLeaves(8);
  auto tree1 = MerkleTree::Build(leaves);
  std::swap(leaves[2], leaves[5]);
  auto tree2 = MerkleTree::Build(leaves);
  ASSERT_TRUE(tree1.ok());
  ASSERT_TRUE(tree2.ok());
  EXPECT_NE(tree1->Root(), tree2->Root());  // Reordering changes the root.
}

TEST(MerkleTreeTest, AnyLeafMutationChangesRoot) {
  std::vector<Bytes> leaves = MakeLeaves(16);
  auto tree = MerkleTree::Build(leaves);
  ASSERT_TRUE(tree.ok());
  for (size_t i = 0; i < leaves.size(); ++i) {
    std::vector<Bytes> mutated = leaves;
    mutated[i][0] ^= 0x01;
    auto tree2 = MerkleTree::Build(mutated);
    ASSERT_TRUE(tree2.ok());
    EXPECT_NE(tree->Root(), tree2->Root()) << "leaf " << i;
  }
}

TEST(MerkleTreeTest, DomainSeparationLeafVsInterior) {
  // A leaf whose content equals the concatenation of two hashes must not
  // collide with the interior node over those hashes.
  Hash256 a = Sha256::Digest("a");
  Hash256 b = Sha256::Digest("b");
  Bytes fake_interior;
  Append(fake_interior, HashToBytes(a));
  Append(fake_interior, HashToBytes(b));
  EXPECT_NE(MerkleTree::HashLeaf(fake_interior),
            MerkleTree::HashInterior(a, b));
}

TEST(MerkleProofTest, SerializationRoundTrip) {
  auto tree = MerkleTree::Build(MakeLeaves(37));
  ASSERT_TRUE(tree.ok());
  auto proof = tree->Prove(19);
  ASSERT_TRUE(proof.ok());
  Bytes wire = proof->Serialize();
  auto back = MerkleProof::Deserialize(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), proof.value());
}

TEST(MerkleProofTest, DeserializeRejectsCorruptInput) {
  EXPECT_FALSE(MerkleProof::Deserialize(Bytes{1, 2, 3}).ok());
  auto tree = MerkleTree::Build(MakeLeaves(8));
  auto proof = tree->Prove(3);
  Bytes wire = proof->Serialize();
  wire.push_back(0);  // Trailing byte.
  EXPECT_FALSE(MerkleProof::Deserialize(wire).ok());
}

TEST(MerkleProofTest, TamperedProofFailsVerification) {
  std::vector<Bytes> leaves = MakeLeaves(32);
  auto tree = MerkleTree::Build(leaves);
  ASSERT_TRUE(tree.ok());
  auto proof = tree->Prove(7);
  ASSERT_TRUE(proof.ok());
  ASSERT_TRUE(VerifyMerkleProof(leaves[7], proof.value(), tree->Root()));

  MerkleProof bad = proof.value();
  bad.path[1].sibling[5] ^= 0xFF;
  EXPECT_FALSE(VerifyMerkleProof(leaves[7], bad, tree->Root()));

  bad = proof.value();
  bad.path[0].sibling_is_left = !bad.path[0].sibling_is_left;
  EXPECT_FALSE(VerifyMerkleProof(leaves[7], bad, tree->Root()));

  // Proof for the wrong leaf data.
  EXPECT_FALSE(VerifyMerkleProof(leaves[8], proof.value(), tree->Root()));
}

// Property sweep over many sizes, including non-powers-of-two (the
// duplicate-last-leaf padding paths) and the paper's batch sizes.
class MerkleProofPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MerkleProofPropertyTest, AllProofsVerify) {
  size_t n = static_cast<size_t>(GetParam());
  std::vector<Bytes> leaves = MakeLeaves(n, 1000 + n);
  auto tree = MerkleTree::Build(leaves);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->LeafCount(), n);
  // Check every leaf for small trees; sample for large ones.
  size_t stride = n > 64 ? n / 37 : 1;
  for (size_t i = 0; i < n; i += stride) {
    auto proof = tree->Prove(i);
    ASSERT_TRUE(proof.ok());
    EXPECT_EQ(proof->leaf_index, i);
    EXPECT_TRUE(VerifyMerkleProof(leaves[i], proof.value(), tree->Root()))
        << "leaf " << i << " of " << n;
    // Proofs bind to position: a different index's proof must not verify
    // this leaf (unless the leaves are identical, which they are not).
    if (i + 1 < n) {
      auto other = tree->Prove(i + 1);
      ASSERT_TRUE(other.ok());
      EXPECT_FALSE(
          VerifyMerkleProof(leaves[i], other.value(), tree->Root()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProofPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                                           31, 33, 100, 500, 1000, 2000));

// --- Parallel build determinism ----------------------------------------
//
// The pool overload partitions the index space only; roots and proofs must
// be byte-identical to the sequential build at every leaf count, including
// the odd-count duplicate-padding shapes.

class ParallelBuildTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelBuildTest, MatchesSequentialBuild) {
  size_t n = static_cast<size_t>(GetParam());
  std::vector<Bytes> leaves = MakeLeaves(n, 7000 + n);
  ThreadPool pool(4);
  auto sequential = MerkleTree::Build(leaves);
  auto parallel = MerkleTree::Build(leaves, &pool);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(sequential->Root(), parallel->Root()) << "n=" << n;
  size_t stride = n > 64 ? n / 31 : 1;
  for (size_t i = 0; i < n; i += stride) {
    auto p_seq = sequential->Prove(i);
    auto p_par = parallel->Prove(i);
    ASSERT_TRUE(p_seq.ok());
    ASSERT_TRUE(p_par.ok());
    EXPECT_EQ(p_seq.value(), p_par.value()) << "leaf " << i << " of " << n;
    // ProveInto is the allocation-reusing variant of Prove.
    MerkleProof reused;
    ASSERT_TRUE(parallel->ProveInto(i, &reused).ok());
    EXPECT_EQ(reused, p_seq.value());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ParallelBuildTest,
                         ::testing::Values(1, 2, 3, 5, 31, 1023, 2000));

TEST(MerkleTreeTest, SharedBytesBuildMatchesBytesBuild) {
  std::vector<Bytes> leaves = MakeLeaves(100, 99);
  std::vector<SharedBytes> shared(leaves.begin(), leaves.end());
  ThreadPool pool(2);
  auto plain = MerkleTree::Build(leaves);
  auto from_shared = MerkleTree::Build(shared);
  auto from_shared_pool = MerkleTree::Build(shared, &pool);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(from_shared.ok());
  ASSERT_TRUE(from_shared_pool.ok());
  EXPECT_EQ(plain->Root(), from_shared->Root());
  EXPECT_EQ(plain->Root(), from_shared_pool->Root());
}

TEST(MerkleTreeTest, MixedLengthLeavesStillDeterministic) {
  // Non-uniform leaf lengths take the per-leaf hashing path; parallel and
  // sequential builds must still agree.
  Rng rng(5);
  std::vector<Bytes> leaves;
  for (size_t i = 0; i < 333; ++i) leaves.push_back(rng.NextBytes(i % 90));
  ThreadPool pool(3);
  auto sequential = MerkleTree::Build(leaves);
  auto parallel = MerkleTree::Build(leaves, &pool);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(sequential->Root(), parallel->Root());
}

TEST(MerkleTreeTest, ProveIntoRejectsOutOfRange) {
  auto tree = MerkleTree::Build(MakeLeaves(4));
  ASSERT_TRUE(tree.ok());
  MerkleProof proof;
  EXPECT_FALSE(tree->ProveInto(4, &proof).ok());
  EXPECT_TRUE(tree->ProveInto(3, &proof).ok());
}

TEST(MerkleTreeTest, ProofDepthIsLogarithmic) {
  auto tree = MerkleTree::Build(MakeLeaves(2000));
  ASSERT_TRUE(tree.ok());
  auto proof = tree->Prove(123);
  ASSERT_TRUE(proof.ok());
  EXPECT_EQ(proof->path.size(), 11u);  // ceil(log2(2000)) = 11.
}

}  // namespace
}  // namespace wedge
