// Cross-cutting coverage: canonical message encodings, contract
// framework guards, chain bookkeeping corners.

#include <gtest/gtest.h>

#include "contracts/stage1_message.h"
#include "core/wedgeblock.h"

namespace wedge {
namespace {

TEST(Stage1MessageTest, EncodingIsCanonicalAndDomainSeparated) {
  MerkleProof proof;
  proof.leaf_index = 3;
  proof.path.push_back(MerkleProofNode{Sha256::Digest("sib"), true});
  Hash256 root = Sha256::Digest("root");
  Bytes data = ToBytes("payload");

  Bytes a = EncodeStage1Message(0, 7, root, proof, data);
  Bytes b = EncodeStage1Message(0, 7, root, proof, data);
  EXPECT_EQ(a, b);  // Deterministic.

  // Every field matters.
  EXPECT_NE(Stage1MessageHash(0, 7, root, proof, data),
            Stage1MessageHash(0, 8, root, proof, data));
  // Shard identity is part of the statement: the same log id on two
  // shards must never hash alike (log ids are shard-local).
  EXPECT_NE(Stage1MessageHash(0, 7, root, proof, data),
            Stage1MessageHash(1, 7, root, proof, data));
  EXPECT_NE(Stage1MessageHash(0, 7, root, proof, data),
            Stage1MessageHash(0, 7, Sha256::Digest("other"), proof, data));
  EXPECT_NE(Stage1MessageHash(0, 7, root, proof, data),
            Stage1MessageHash(0, 7, root, proof, ToBytes("other")));
  MerkleProof other_proof = proof;
  other_proof.leaf_index = 4;
  EXPECT_NE(Stage1MessageHash(0, 7, root, proof, data),
            Stage1MessageHash(0, 7, root, other_proof, data));

  // Length-prefixing prevents field-boundary ambiguity: moving a byte
  // from the end of one field to the start of the next changes the hash.
  EXPECT_NE(Stage1MessageHash(0, 7, root, proof, ToBytes("ab")),
            Stage1MessageHash(0, 7, root, proof, ToBytes("a")));
}

/// Guard-behaviour probe contract.
class ProbeContract : public Contract {
 public:
  std::string_view Name() const override { return "Probe"; }
  Result<Bytes> Call(CallContext& ctx, std::string_view method,
                     const Bytes& args) override {
    (void)args;
    if (method == "emit_in_readonly") {
      ctx.Emit("ShouldNotAppear", Bytes());
      Bytes out;
      PutU32(out, static_cast<uint32_t>(ctx.staged_events().size()));
      return out;
    }
    if (method == "transfer_in_readonly") {
      Status s = ctx.TransferOut(ctx.sender(), U256(1));
      return Bytes{static_cast<uint8_t>(s.ok() ? 1 : 0)};
    }
    if (method == "overdraw") {
      return ctx.TransferOut(ctx.sender(), EthToWei(1'000'000)).ok()
                 ? Result<Bytes>(Bytes{1})
                 : Result<Bytes>(Status::Reverted("insufficient"));
    }
    if (method == "block_info") {
      Bytes out;
      PutU64(out, ctx.block_number());
      PutU64(out, static_cast<uint64_t>(ctx.block_timestamp()));
      return out;
    }
    return Status::NotFound("unknown");
  }
};

class FrameworkGuardTest : public ::testing::Test {
 protected:
  FrameworkGuardTest() : clock_(0), chain_(ChainConfig{}, &clock_) {
    owner_ = KeyPair::FromSeed(1).address();
    chain_.Fund(owner_, EthToWei(10));
    contract_ = chain_.Deploy(owner_, std::make_unique<ProbeContract>())
                    .value();
  }
  SimClock clock_;
  Blockchain chain_;
  Address owner_;
  Address contract_;
};

TEST_F(FrameworkGuardTest, ReadOnlyCallsCannotEmit) {
  auto raw = chain_.Call(contract_, "emit_in_readonly", {});
  ASSERT_TRUE(raw.ok());
  ByteReader reader(raw.value());
  EXPECT_EQ(reader.ReadU32().value(), 0u);  // Event was swallowed.
}

TEST_F(FrameworkGuardTest, ReadOnlyCallsCannotTransfer) {
  auto raw = chain_.Call(contract_, "transfer_in_readonly", {});
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ((*raw)[0], 0);
}

TEST_F(FrameworkGuardTest, ContractCannotOverdraw) {
  Transaction tx;
  tx.from = owner_;
  tx.to = contract_;
  tx.method = "overdraw";
  auto id = chain_.Submit(tx);
  ASSERT_TRUE(id.ok());
  auto receipt = chain_.WaitForReceipt(id.value());
  ASSERT_TRUE(receipt.ok());
  EXPECT_FALSE(receipt->success);
}

TEST_F(FrameworkGuardTest, BlockInfoVisibleToContracts) {
  clock_.AdvanceSeconds(13 * 3);
  chain_.PumpUntilNow();
  Transaction tx;
  tx.from = owner_;
  tx.to = contract_;
  tx.method = "block_info";
  auto id = chain_.Submit(tx);
  ASSERT_TRUE(id.ok());
  clock_.AdvanceSeconds(13);
  chain_.PumpUntilNow();
  auto receipt = chain_.GetReceipt(id.value());
  ASSERT_TRUE(receipt.ok());
  EXPECT_EQ(receipt->block_number, 4u);
  EXPECT_EQ(receipt->block_timestamp, 13 * 4);
}

TEST(ChainBookkeepingTest, DeployedAddressesAreUnique) {
  SimClock clock(0);
  Blockchain chain(ChainConfig{}, &clock);
  Address owner = KeyPair::FromSeed(1).address();
  chain.Fund(owner, EthToWei(100));
  std::set<std::string> addresses;
  for (int i = 0; i < 10; ++i) {
    auto addr = chain.Deploy(owner, std::make_unique<ProbeContract>());
    ASSERT_TRUE(addr.ok());
    EXPECT_TRUE(addresses.insert(addr->ToHex()).second);
  }
}

TEST(ChainBookkeepingTest, NoncesIncreasePerSender) {
  SimClock clock(0);
  Blockchain chain(ChainConfig{}, &clock);
  Address a = KeyPair::FromSeed(1).address();
  Address b = KeyPair::FromSeed(2).address();
  chain.Fund(a, EthToWei(10));
  chain.Fund(b, EthToWei(10));
  Transaction tx;
  tx.to = b;
  tx.value = U256(1);
  tx.from = a;
  ASSERT_TRUE(chain.Submit(tx).ok());
  ASSERT_TRUE(chain.Submit(tx).ok());
  tx.from = b;
  tx.to = a;
  ASSERT_TRUE(chain.Submit(tx).ok());
  clock.AdvanceSeconds(13);
  chain.PumpUntilNow();
  // Nonces are per-account: a used 0,1; b used 0. (Observable through
  // receipts being distinct transactions that all executed.)
  EXPECT_EQ(chain.HeadNumber(), 1u);
}

TEST(ChainBookkeepingTest, UnknownTxQueries) {
  SimClock clock(0);
  Blockchain chain(ChainConfig{}, &clock);
  EXPECT_FALSE(chain.GetReceipt(42).ok());
  EXPECT_FALSE(chain.IsConfirmed(42));
}

TEST(ChainBookkeepingTest, PumpIsIdempotent) {
  SimClock clock(0);
  Blockchain chain(ChainConfig{}, &clock);
  clock.AdvanceSeconds(13);
  chain.PumpUntilNow();
  uint64_t head = chain.HeadNumber();
  chain.PumpUntilNow();
  chain.PumpUntilNow();
  EXPECT_EQ(chain.HeadNumber(), head);
}

TEST(WeiFormattingTest, SmallAndCompositeValues) {
  EXPECT_EQ(WeiToEthString(Wei()), "0.0");
  EXPECT_EQ(WeiToEthString(U256(1)), "0.000000000000000001");
  EXPECT_EQ(WeiToEthString(EthToWei(5) + GweiToWei(250'000'000)),
            "5.25");
}

TEST(PaymentViewsTest, IsStartedView) {
  DeploymentConfig config;
  config.node.batch_size = 4;
  auto d = Deployment::Create(config);
  ASSERT_TRUE(d.ok());
  auto payment = (*d)->CreatePaymentChannel(60, U256(100), 5);
  ASSERT_TRUE(payment.ok());
  auto raw = (*d)->chain().Call(payment.value(), "isStarted", {});
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ((*raw)[0], 0);
  PaymentChannelClient client(&(*d)->chain(), payment.value(),
                              (*d)->publisher().address());
  ASSERT_TRUE(client.Deposit(U256(1000)).ok());
  ASSERT_TRUE(client.StartPayment().ok());
  raw = (*d)->chain().Call(payment.value(), "isStarted", {});
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ((*raw)[0], 1);
}

}  // namespace
}  // namespace wedge
