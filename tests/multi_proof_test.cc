#include "merkle/multi_proof.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace wedge {
namespace {

std::vector<Bytes> MakeLeaves(size_t n, uint64_t seed = 5) {
  Rng rng(seed);
  std::vector<Bytes> leaves;
  for (size_t i = 0; i < n; ++i) leaves.push_back(rng.NextBytes(48));
  return leaves;
}

std::vector<std::pair<uint64_t, Bytes>> Select(
    const std::vector<Bytes>& leaves, const std::vector<uint64_t>& indices) {
  std::vector<std::pair<uint64_t, Bytes>> out;
  for (uint64_t i : indices) out.emplace_back(i, leaves[i]);
  return out;
}

TEST(MultiProofTest, SingleLeafMatchesSingleProof) {
  auto leaves = MakeLeaves(16);
  auto tree = MerkleTree::Build(leaves).value();
  auto multi = BuildMultiProof(tree, {5});
  ASSERT_TRUE(multi.ok());
  // Same number of hashes as the classic path proof.
  EXPECT_EQ(multi->siblings.size(), tree.Prove(5)->path.size());
  EXPECT_TRUE(VerifyMultiProof(Select(leaves, {5}), multi.value(),
                               tree.Root()));
}

TEST(MultiProofTest, AdjacentLeavesShareSiblings) {
  auto leaves = MakeLeaves(16);
  auto tree = MerkleTree::Build(leaves).value();
  // Leaves 4 and 5 are siblings: the pair needs only the path above.
  auto multi = BuildMultiProof(tree, {4, 5});
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(multi->siblings.size(), 3u);  // depth 4 - shared level.
  EXPECT_TRUE(VerifyMultiProof(Select(leaves, {4, 5}), multi.value(),
                               tree.Root()));
}

TEST(MultiProofTest, WholeTreeNeedsNoSiblings) {
  auto leaves = MakeLeaves(8);
  auto tree = MerkleTree::Build(leaves).value();
  auto multi = BuildMultiProof(tree, {0, 1, 2, 3, 4, 5, 6, 7});
  ASSERT_TRUE(multi.ok());
  EXPECT_TRUE(multi->siblings.empty());
  EXPECT_TRUE(VerifyMultiProof(
      Select(leaves, {0, 1, 2, 3, 4, 5, 6, 7}), multi.value(), tree.Root()));
}

TEST(MultiProofTest, RejectsBadInputs) {
  auto leaves = MakeLeaves(8);
  auto tree = MerkleTree::Build(leaves).value();
  EXPECT_FALSE(BuildMultiProof(tree, {}).ok());
  EXPECT_FALSE(BuildMultiProof(tree, {3, 3}).ok());
  EXPECT_FALSE(BuildMultiProof(tree, {8}).ok());
}

TEST(MultiProofTest, DetectsTampering) {
  auto leaves = MakeLeaves(32);
  auto tree = MerkleTree::Build(leaves).value();
  auto multi = BuildMultiProof(tree, {3, 10, 17}).value();
  auto selection = Select(leaves, {3, 10, 17});
  ASSERT_TRUE(VerifyMultiProof(selection, multi, tree.Root()));

  // Tampered leaf data.
  auto bad_sel = selection;
  bad_sel[1].second[0] ^= 1;
  EXPECT_FALSE(VerifyMultiProof(bad_sel, multi, tree.Root()));

  // Swapped index.
  bad_sel = selection;
  bad_sel[0].first = 4;
  EXPECT_FALSE(VerifyMultiProof(bad_sel, multi, tree.Root()));

  // Tampered sibling hash.
  auto bad_proof = multi;
  bad_proof.siblings[0][0] ^= 1;
  EXPECT_FALSE(VerifyMultiProof(selection, bad_proof, tree.Root()));

  // Truncated / padded proof.
  bad_proof = multi;
  bad_proof.siblings.pop_back();
  EXPECT_FALSE(VerifyMultiProof(selection, bad_proof, tree.Root()));
  bad_proof = multi;
  bad_proof.siblings.push_back(Hash256{});
  EXPECT_FALSE(VerifyMultiProof(selection, bad_proof, tree.Root()));

  // Wrong root.
  Hash256 wrong = tree.Root();
  wrong[0] ^= 1;
  EXPECT_FALSE(VerifyMultiProof(selection, multi, wrong));

  // Duplicate index in the verification set.
  bad_sel = selection;
  bad_sel.push_back(selection[0]);
  EXPECT_FALSE(VerifyMultiProof(bad_sel, multi, tree.Root()));

  // Empty set.
  EXPECT_FALSE(VerifyMultiProof({}, multi, tree.Root()));
}

TEST(MultiProofTest, OrderInsensitiveVerification) {
  auto leaves = MakeLeaves(16);
  auto tree = MerkleTree::Build(leaves).value();
  auto multi = BuildMultiProof(tree, {2, 9, 14}).value();
  auto shuffled = Select(leaves, {14, 2, 9});
  EXPECT_TRUE(VerifyMultiProof(shuffled, multi, tree.Root()));
}

TEST(MultiProofTest, SerializationRoundTrip) {
  auto leaves = MakeLeaves(20);
  auto tree = MerkleTree::Build(leaves).value();
  auto multi = BuildMultiProof(tree, {0, 7, 19}).value();
  auto back = MerkleMultiProof::Deserialize(multi.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), multi);
  EXPECT_FALSE(MerkleMultiProof::Deserialize(Bytes{1}).ok());
}

TEST(MultiProofTest, CheaperThanIndividualProofs) {
  auto leaves = MakeLeaves(2000);
  auto tree = MerkleTree::Build(leaves).value();
  std::vector<uint64_t> indices;
  for (uint64_t i = 0; i < 200; ++i) indices.push_back(i * 10);
  auto multi = BuildMultiProof(tree, indices).value();
  size_t individual = 0;
  for (uint64_t i : indices) individual += tree.Prove(i)->path.size();
  EXPECT_LT(multi.siblings.size(), individual / 2);
  EXPECT_TRUE(VerifyMultiProof(Select(leaves, indices), multi, tree.Root()));
}

// Property sweep: random index subsets over many tree shapes (including
// odd sizes exercising the duplicate-last padding) all verify, and a
// proof built for one subset never verifies a different subset.
class MultiProofPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MultiProofPropertyTest, RandomSubsetsVerify) {
  auto [tree_size, subset_size] = GetParam();
  if (subset_size > tree_size) GTEST_SKIP();
  auto leaves = MakeLeaves(tree_size, 77 + tree_size);
  auto tree = MerkleTree::Build(leaves).value();
  Rng rng(tree_size * 131 + subset_size);
  for (int round = 0; round < 5; ++round) {
    std::vector<uint64_t> indices;
    std::set<uint64_t> used;
    while (static_cast<int>(indices.size()) < subset_size) {
      uint64_t idx = rng.Uniform(tree_size);
      if (used.insert(idx).second) indices.push_back(idx);
    }
    auto multi = BuildMultiProof(tree, indices);
    ASSERT_TRUE(multi.ok());
    EXPECT_TRUE(
        VerifyMultiProof(Select(leaves, indices), multi.value(), tree.Root()));
    // Shifting one index breaks it (unless the shifted set is identical).
    auto shifted = indices;
    shifted[0] = (shifted[0] + 1) % tree_size;
    if (used.count(shifted[0]) == 0) {
      EXPECT_FALSE(VerifyMultiProof(Select(leaves, shifted), multi.value(),
                                    tree.Root()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MultiProofPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 7, 8, 9, 31, 100, 333),
                       ::testing::Values(1, 2, 5, 8)));

}  // namespace
}  // namespace wedge
