#include "core/offchain_node.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/wedgeblock.h"

namespace wedge {
namespace {

std::vector<std::pair<Bytes, Bytes>> Workload(int n, size_t value_size = 32) {
  Rng rng(n);
  std::vector<std::pair<Bytes, Bytes>> kvs;
  for (int i = 0; i < n; ++i) {
    kvs.emplace_back(ToBytes("k" + std::to_string(i)),
                     rng.NextBytes(value_size));
  }
  return kvs;
}

TEST(AppendRequestTest, SignAndVerify) {
  KeyPair key = KeyPair::FromSeed(1);
  AppendRequest req =
      AppendRequest::Make(key, 7, ToBytes("key"), ToBytes("value"));
  EXPECT_EQ(req.publisher, key.address());
  EXPECT_EQ(req.sequence, 7u);
  EXPECT_TRUE(req.VerifySignature());

  // Any field tamper breaks the signature.
  AppendRequest bad = req;
  bad.sequence = 8;
  EXPECT_FALSE(bad.VerifySignature());
  bad = req;
  bad.value[0] ^= 1;
  EXPECT_FALSE(bad.VerifySignature());
  bad = req;
  bad.publisher = KeyPair::FromSeed(2).address();
  EXPECT_FALSE(bad.VerifySignature());
}

TEST(AppendRequestTest, SerializationRoundTrip) {
  KeyPair key = KeyPair::FromSeed(3);
  AppendRequest req =
      AppendRequest::Make(key, 42, ToBytes("k"), ToBytes("v"));
  auto back = AppendRequest::Deserialize(req.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->publisher, req.publisher);
  EXPECT_EQ(back->sequence, req.sequence);
  EXPECT_EQ(back->key, req.key);
  EXPECT_EQ(back->value, req.value);
  EXPECT_TRUE(back->VerifySignature());
  EXPECT_FALSE(AppendRequest::Deserialize(Bytes{1, 2, 3}).ok());
}

class OffchainNodeTest : public ::testing::Test {
 protected:
  static std::unique_ptr<Deployment> Make(uint32_t batch_size,
                                          bool auto_stage2 = true) {
    DeploymentConfig config;
    config.node.batch_size = batch_size;
    config.node.worker_threads = 2;
    config.node.auto_stage2 = auto_stage2;
    auto d = Deployment::Create(config);
    EXPECT_TRUE(d.ok());
    return std::move(d).value();
  }
};

TEST_F(OffchainNodeTest, AppendReturnsVerifiableResponses) {
  auto d = Make(4);
  auto& pub = d->publisher();
  auto responses = pub.Publish(pub.MakeRequests(Workload(10)));
  ASSERT_TRUE(responses.ok());
  ASSERT_EQ(responses->size(), 10u);
  // 10 requests with batch size 4 -> positions 0,1,2 (4+4+2).
  EXPECT_EQ(d->node().LogPositions(), 3u);
  for (size_t i = 0; i < responses->size(); ++i) {
    const Stage1Response& r = (*responses)[i];
    EXPECT_TRUE(r.Verify(d->node().address()));
    EXPECT_EQ(r.index.log_id, i / 4);
    EXPECT_EQ(r.index.offset, i % 4);
    // The leaf round-trips to the original request.
    auto req = AppendRequest::Deserialize(r.entry);
    ASSERT_TRUE(req.ok());
    EXPECT_EQ(req->sequence, i);
  }
}

TEST_F(OffchainNodeTest, ResponsesWithinBatchShareRoot) {
  auto d = Make(8);
  auto& pub = d->publisher();
  auto responses = pub.Publish(pub.MakeRequests(Workload(8)));
  ASSERT_TRUE(responses.ok());
  for (const auto& r : *responses) {
    EXPECT_EQ(r.proof.mroot, responses->front().proof.mroot);
    EXPECT_EQ(r.proof.log_id, 0u);
  }
}

TEST_F(OffchainNodeTest, RejectsEmptyAndBadSignatures) {
  auto d = Make(4);
  EXPECT_FALSE(d->node().Append({}).ok());

  KeyPair key = KeyPair::FromSeed(9);
  AppendRequest good = AppendRequest::Make(key, 0, ToBytes("k"), ToBytes("v"));
  AppendRequest bad = good;
  bad.value.push_back(0xFF);  // Signature now invalid.
  auto responses = d->node().Append({good, bad});
  ASSERT_TRUE(responses.ok());
  EXPECT_EQ(responses->size(), 1u);  // Only the valid one accepted.
  EXPECT_EQ(d->node().stats().invalid_signatures_rejected, 1u);

  auto all_bad = d->node().Append({bad});
  EXPECT_FALSE(all_bad.ok());
}

TEST_F(OffchainNodeTest, Stage2CommitsDigests) {
  auto d = Make(4);
  auto& pub = d->publisher();
  auto responses = pub.Publish(pub.MakeRequests(Workload(8)));
  ASSERT_TRUE(responses.ok());
  EXPECT_EQ(d->node().stats().stage2_txs_submitted, 2u);

  // Before mining: not committed.
  auto check = pub.CheckBlockchainCommit(responses->front());
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check.value(), CommitCheck::kNotYetCommitted);

  d->AdvanceBlocks(2);
  check = pub.CheckBlockchainCommit(responses->front());
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check.value(), CommitCheck::kBlockchainCommitted);
  check = pub.CheckBlockchainCommit(responses->back());
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check.value(), CommitCheck::kBlockchainCommitted);
}

TEST_F(OffchainNodeTest, ManualStage2Batching) {
  auto d = Make(4, /*auto_stage2=*/false);
  auto& pub = d->publisher();
  ASSERT_TRUE(pub.Publish(pub.MakeRequests(Workload(12))).ok());
  EXPECT_EQ(d->node().PendingDigests(), 3u);
  EXPECT_EQ(d->node().stats().stage2_txs_submitted, 0u);

  // One transaction carries all three digests (grouped lazy commit).
  auto tx = d->node().CommitPendingDigests();
  ASSERT_TRUE(tx.ok());
  EXPECT_EQ(d->node().PendingDigests(), 0u);
  auto receipt = d->chain().WaitForReceipt(tx.value());
  ASSERT_TRUE(receipt.ok());
  EXPECT_TRUE(receipt->success);

  // Nothing left to commit.
  EXPECT_EQ(d->node().CommitPendingDigests().status().code(), Code::kNotFound);
}

TEST_F(OffchainNodeTest, StreamingPathSealsOnBatchBoundary) {
  auto d = Make(4);
  KeyPair key = KeyPair::FromSeed(11);
  std::vector<std::vector<Stage1Response>> delivered;
  d->node().SetResponseCallback(
      [&](std::vector<Stage1Response>&& batch) {
        delivered.push_back(std::move(batch));
      });
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(d->node()
                    .SubmitAppend(AppendRequest::Make(
                        key, i, ToBytes("k"), ToBytes("v")))
                    .ok());
  }
  EXPECT_EQ(delivered.size(), 1u);  // One full batch of 4 sealed.
  EXPECT_EQ(d->node().StagedRequests(), 2u);
  auto flushed = d->node().FlushStagedBatch();
  ASSERT_TRUE(flushed.ok());
  // With a callback set, the sealed responses have exactly one owner: the
  // callback. The returned vector is empty (no second copy is made).
  EXPECT_TRUE(flushed->empty());
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[1].size(), 2u);
  EXPECT_EQ(d->node().StagedRequests(), 0u);
  EXPECT_EQ(d->node().FlushStagedBatch().status().code(), Code::kNotFound);
}

TEST_F(OffchainNodeTest, ReadReturnsFreshVerifiableResponse) {
  auto d = Make(4);
  auto& pub = d->publisher();
  ASSERT_TRUE(pub.Publish(pub.MakeRequests(Workload(8))).ok());
  d->AdvanceBlocks(2);

  auto read = d->node().ReadOne(EntryIndex{1, 2});
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->Verify(d->node().address()));
  auto req = AppendRequest::Deserialize(read->entry);
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->sequence, 6u);  // Position 1, offset 2 = 6th request.

  EXPECT_FALSE(d->node().ReadOne(EntryIndex{5, 0}).ok());
  EXPECT_FALSE(d->node().ReadOne(EntryIndex{0, 9}).ok());
}

TEST_F(OffchainNodeTest, BatchReadAndScan) {
  auto d = Make(4);
  auto& pub = d->publisher();
  ASSERT_TRUE(pub.Publish(pub.MakeRequests(Workload(12))).ok());

  auto many = d->node().Read({{0, 1}, {1, 3}, {2, 0}});
  ASSERT_TRUE(many.ok());
  EXPECT_EQ(many->size(), 3u);
  for (const auto& r : *many) EXPECT_TRUE(r.Verify(d->node().address()));

  auto scan = d->node().Scan(0, 2);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->size(), 12u);
  for (const auto& r : *scan) EXPECT_TRUE(r.Verify(d->node().address()));
  EXPECT_GE(d->node().stats().reads_served, 15u);
}

TEST_F(OffchainNodeTest, TreeCacheEvictionStillServesReads) {
  DeploymentConfig config;
  config.node.batch_size = 2;
  config.node.worker_threads = 1;
  config.node.tree_cache_capacity = 1;  // Evict aggressively.
  auto d = Deployment::Create(config);
  ASSERT_TRUE(d.ok());
  auto& pub = (*d)->publisher();
  ASSERT_TRUE(pub.Publish(pub.MakeRequests(Workload(8))).ok());
  // Position 0's tree was evicted; the node must rebuild it.
  auto read = (*d)->node().ReadOne(EntryIndex{0, 1});
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->Verify((*d)->node().address()));
}

TEST_F(OffchainNodeTest, UserClientVerifiedReads) {
  auto d = Make(4);
  auto& pub = d->publisher();
  ASSERT_TRUE(pub.Publish(pub.MakeRequests(Workload(8))).ok());
  UserClient user = d->MakeUser(77);

  // Stage-1-only read works immediately.
  auto r1 = user.ReadVerified(EntryIndex{0, 0});
  ASSERT_TRUE(r1.ok());
  // Blockchain-committed read requires stage 2 to land.
  EXPECT_FALSE(user.ReadVerified(EntryIndex{0, 0}, true).ok());
  d->AdvanceBlocks(2);
  EXPECT_TRUE(user.ReadVerified(EntryIndex{0, 0}, true).ok());

  auto many = user.ReadManyVerified({{0, 1}, {1, 1}}, true);
  ASSERT_TRUE(many.ok());
  EXPECT_EQ(many->size(), 2u);
}

TEST_F(OffchainNodeTest, AuditorReportsCleanLog) {
  auto d = Make(4);
  auto& pub = d->publisher();
  ASSERT_TRUE(pub.Publish(pub.MakeRequests(Workload(12))).ok());
  d->AdvanceBlocks(2);
  AuditorClient auditor = d->MakeAuditor(88);
  auto report = auditor.Audit(0, 2);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->entries_checked, 12u);
  EXPECT_TRUE(report->Clean());
  EXPECT_EQ(report->not_yet_committed, 0u);
}

TEST_F(OffchainNodeTest, AuditorDetectsTamperedLog) {
  auto d = Make(4);
  auto& pub = d->publisher();
  ASSERT_TRUE(pub.Publish(pub.MakeRequests(Workload(8))).ok());
  d->AdvanceBlocks(2);
  d->node().set_byzantine_mode(ByzantineMode::kTamperReadData);
  AuditorClient auditor = d->MakeAuditor(88);
  auto report = auditor.Audit(0, 1);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->Clean());
  // Forged responses verify at stage 1 but mismatch on-chain.
  EXPECT_EQ(report->stage1_failures, 0u);
  EXPECT_EQ(report->onchain_mismatches, report->entries_checked);
}

TEST_F(OffchainNodeTest, Stage1ResponseSerializationRoundTrip) {
  auto d = Make(4);
  auto& pub = d->publisher();
  auto responses = pub.Publish(pub.MakeRequests(Workload(4)));
  ASSERT_TRUE(responses.ok());
  const Stage1Response& r = responses->front();
  auto back = Stage1Response::Deserialize(r.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->Verify(d->node().address()));
  EXPECT_EQ(back->entry, r.entry);
  EXPECT_EQ(back->proof.mroot, r.proof.mroot);
  EXPECT_FALSE(Stage1Response::Deserialize(Bytes(3, 1)).ok());
}

TEST_F(OffchainNodeTest, VerifyRejectsCrossIndexResponses) {
  auto d = Make(4);
  auto& pub = d->publisher();
  auto responses = pub.Publish(pub.MakeRequests(Workload(8)));
  ASSERT_TRUE(responses.ok());
  // Swap the index of a response: stage-1 verification must fail.
  Stage1Response mixed = (*responses)[0];
  mixed.index = (*responses)[5].index;
  EXPECT_FALSE(mixed.Verify(d->node().address()));
}

TEST_F(OffchainNodeTest, DigestsSurviveStage2SubmitFailure) {
  // Regression: a failed chain Submit used to drain the pending digests
  // and lose the roots for good. They must stay journaled for retry.
  SimClock clock(0);
  Blockchain chain(ChainConfig{}, &clock);
  KeyPair node_key = KeyPair::FromSeed(5);
  chain.Fund(node_key.address(), EthToWei(10));

  OffchainNodeConfig config;
  config.batch_size = 2;
  config.worker_threads = 2;
  config.auto_stage2 = false;
  // No contract at the target address: every Submit fails with NotFound.
  Address bogus_target = KeyPair::FromSeed(99).address();
  OffchainNode node(config, node_key, std::make_unique<MemoryLogStore>(),
                    &chain, bogus_target);

  KeyPair client = KeyPair::FromSeed(6);
  std::vector<AppendRequest> requests;
  for (uint64_t i = 0; i < 2; ++i) {
    requests.push_back(
        AppendRequest::Make(client, i, ToBytes("k"), ToBytes("v")));
  }
  ASSERT_TRUE(node.Append(requests).ok());
  ASSERT_EQ(node.PendingDigests(), 1u);

  auto tx = node.CommitPendingDigests();
  EXPECT_FALSE(tx.ok());
  // The digest survives the failure and a later commit can retry it.
  EXPECT_EQ(node.PendingDigests(), 1u);
  EXPECT_EQ(node.UncommittedDigests(), 1u);
  EXPECT_EQ(node.stats().stage2_txs_submitted, 0u);
}

TEST_F(OffchainNodeTest, OrderingPreservedAcrossStage2) {
  // The order committed off-chain equals the order committed on-chain:
  // entries' positions never change once stage-1 responses are issued
  // (the gaming use case's requirement, §2.3).
  auto d = Make(4);
  auto& pub = d->publisher();
  auto responses = pub.Publish(pub.MakeRequests(Workload(8)));
  ASSERT_TRUE(responses.ok());
  d->AdvanceBlocks(2);
  for (const auto& r : *responses) {
    // Re-read every entry by its index; contents must match and still
    // verify against the now blockchain-committed root.
    auto read = d->node().ReadOne(r.index);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read->entry, r.entry);
    auto check = pub.CheckBlockchainCommit(read.value());
    ASSERT_TRUE(check.ok());
    EXPECT_EQ(check.value(), CommitCheck::kBlockchainCommitted);
  }
}

}  // namespace
}  // namespace wedge
