#include "contracts/payment.h"

#include <gtest/gtest.h>

#include "core/wedgeblock.h"

namespace wedge {
namespace {

/// Payment-channel scenarios for the DApp-logging-as-a-service model
/// (paper §4.5, Algorithm 3). Channel: 100 wei per 60-second period,
/// at most 5 overdue periods.
class PaymentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DeploymentConfig config;
    config.node.batch_size = 4;
    config.node.worker_threads = 1;
    auto d = Deployment::Create(config);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    deployment_ = std::move(d).value();
    auto addr = deployment_->CreatePaymentChannel(
        /*period_seconds=*/60, /*payment_per_period=*/U256(100),
        /*max_overdue_periods=*/5);
    ASSERT_TRUE(addr.ok()) << addr.status().ToString();
    payment_address_ = addr.value();
    client_ = std::make_unique<PaymentChannelClient>(
        &deployment_->chain(), payment_address_,
        deployment_->publisher().address());
    offchain_ = std::make_unique<PaymentChannelClient>(
        &deployment_->chain(), payment_address_,
        deployment_->node().address());
  }

  /// Advances sim time by whole seconds and mines.
  void Elapse(int64_t seconds) {
    deployment_->clock().AdvanceSeconds(seconds);
    deployment_->chain().PumpUntilNow();
  }

  std::unique_ptr<Deployment> deployment_;
  Address payment_address_;
  std::unique_ptr<PaymentChannelClient> client_;
  std::unique_ptr<PaymentChannelClient> offchain_;
};

TEST_F(PaymentTest, DepositOnlyByClient) {
  ASSERT_TRUE(client_->Deposit(U256(10'000)).ok());
  EXPECT_EQ(deployment_->chain().BalanceOf(payment_address_), U256(10'000));
  // The Offchain Node cannot fund the channel.
  EXPECT_FALSE(offchain_->Deposit(U256(1)).ok());
}

TEST_F(PaymentTest, StartPaymentGuards) {
  EXPECT_FALSE(offchain_->StartPayment().ok());  // Wrong party.
  ASSERT_TRUE(client_->Deposit(U256(10'000)).ok());
  ASSERT_TRUE(client_->StartPayment().ok());
  EXPECT_FALSE(client_->StartPayment().ok());  // Already started.
}

TEST_F(PaymentTest, UpdateBeforeStartReverts) {
  EXPECT_FALSE(client_->UpdateStatus().ok());
}

TEST_F(PaymentTest, StreamingReservation) {
  ASSERT_TRUE(client_->Deposit(U256(10'000)).ok());
  ASSERT_TRUE(client_->StartPayment().ok());
  EXPECT_EQ(client_->ReservedForEdge().value(), Wei());

  // ~3 periods elapse (use block-aligned arithmetic: updates happen at
  // the next mined block's timestamp).
  Elapse(3 * 60);
  auto receipt = client_->UpdateStatus();
  ASSERT_TRUE(receipt.ok());
  Wei reserved = client_->ReservedForEdge().value();
  // At least 3 periods accrued; block-timestamp rounding may add some.
  EXPECT_GE(reserved, U256(300));
  EXPECT_LE(reserved, U256(600));
  // A follow-up update only accrues what the confirmation delay itself
  // added (each transaction advances ~1 simulated minute): monotone, and
  // bounded by two more periods.
  ASSERT_TRUE(client_->UpdateStatus().ok());
  Wei reserved2 = client_->ReservedForEdge().value();
  EXPECT_GE(reserved2, reserved);
  EXPECT_LE(reserved2, reserved + U256(200));
  // Emits PaymentStateUpdated while funded.
  bool found = false;
  for (const auto& ev : receipt->events) {
    found |= ev.name == "PaymentStateUpdated";
  }
  EXPECT_TRUE(found);
}

TEST_F(PaymentTest, OffchainWithdrawal) {
  ASSERT_TRUE(client_->Deposit(U256(10'000)).ok());
  ASSERT_TRUE(client_->StartPayment().ok());
  Elapse(5 * 60);
  Wei before = deployment_->chain().BalanceOf(deployment_->node().address());
  auto receipt = offchain_->WithdrawOffchain();
  ASSERT_TRUE(receipt.ok());
  Wei after = deployment_->chain().BalanceOf(deployment_->node().address());
  // Withdrew >= 5 periods worth, minus gas.
  EXPECT_GE(after + receipt->fee, before + U256(500));
  EXPECT_EQ(client_->ReservedForEdge().value(), Wei());
  // Client cannot call the offchain withdrawal.
  EXPECT_FALSE(client_->WithdrawOffchain().ok());
}

TEST_F(PaymentTest, ClientWithdrawalKeepsReservedPortion) {
  ASSERT_TRUE(client_->Deposit(U256(1'000)).ok());
  ASSERT_TRUE(client_->StartPayment().ok());
  Elapse(2 * 60);
  ASSERT_TRUE(client_->UpdateStatus().ok());
  ASSERT_TRUE(client_->WithdrawClient().ok());
  // Only the unreserved remainder left the contract: what stays behind is
  // exactly the (post-withdraw-update) reserved portion.
  Wei reserved = client_->ReservedForEdge().value();
  EXPECT_GT(reserved, Wei());
  EXPECT_EQ(deployment_->chain().BalanceOf(payment_address_), reserved);
  EXPECT_FALSE(offchain_->WithdrawClient().ok());  // Wrong party.
}

TEST_F(PaymentTest, NoOverdrawEver) {
  ASSERT_TRUE(client_->Deposit(U256(250)).ok());  // Covers 2.5 periods.
  ASSERT_TRUE(client_->StartPayment().ok());
  Elapse(4 * 60);  // 4 periods owed, only 2 covered.
  auto receipt = client_->UpdateStatus();
  ASSERT_TRUE(receipt.ok());
  Wei reserved = client_->ReservedForEdge().value();
  EXPECT_EQ(reserved, U256(200));  // Whole periods only, never overdrawn.
  bool insufficient = false;
  for (const auto& ev : receipt->events) {
    insufficient |= ev.name == "DepositInsufficient";
  }
  EXPECT_TRUE(insufficient);
  EXPECT_FALSE(client_->IsTerminated().value());
}

TEST_F(PaymentTest, ViolationTerminatesAndSweeps) {
  ASSERT_TRUE(client_->Deposit(U256(100)).ok());  // One period only.
  ASSERT_TRUE(client_->StartPayment().ok());
  // 10 periods elapse; 9 overdue > max 5.
  Elapse(10 * 60);
  Wei offchain_before =
      deployment_->chain().BalanceOf(deployment_->node().address());
  auto receipt = offchain_->UpdateStatus();
  ASSERT_TRUE(receipt.ok());
  bool violated = false;
  for (const auto& ev : receipt->events) {
    violated |= ev.name == "ContractViolated";
  }
  EXPECT_TRUE(violated);
  EXPECT_TRUE(client_->IsTerminated().value());
  // Entire balance swept to the Offchain Node (it paid gas for the call,
  // so compare with the fee added back).
  EXPECT_EQ(deployment_->chain().BalanceOf(payment_address_), Wei());
  EXPECT_EQ(deployment_->chain().BalanceOf(deployment_->node().address()) +
                receipt->fee,
            offchain_before + U256(100));
  // No further deposits accepted.
  EXPECT_FALSE(client_->Deposit(U256(1)).ok());
}

TEST_F(PaymentTest, CleanTermination) {
  ASSERT_TRUE(client_->Deposit(U256(1'000)).ok());
  ASSERT_TRUE(client_->StartPayment().ok());
  Elapse(3 * 60);
  Wei client_before =
      deployment_->chain().BalanceOf(deployment_->publisher().address());
  Wei offchain_before =
      deployment_->chain().BalanceOf(deployment_->node().address());
  auto receipt = client_->Terminate();
  ASSERT_TRUE(receipt.ok());
  EXPECT_TRUE(client_->IsTerminated().value());
  EXPECT_EQ(deployment_->chain().BalanceOf(payment_address_), Wei());
  // Offchain got the accrued periods; client got the rest back.
  Wei offchain_after =
      deployment_->chain().BalanceOf(deployment_->node().address());
  EXPECT_GE(offchain_after, offchain_before + U256(300));
  EXPECT_GT(deployment_->chain().BalanceOf(deployment_->publisher().address()) +
                receipt->fee,
            client_before);
  // Terminate twice fails.
  EXPECT_FALSE(client_->Terminate().ok());
}

TEST_F(PaymentTest, RemainingPeriodsView) {
  ASSERT_TRUE(client_->Deposit(U256(1'000)).ok());
  ASSERT_TRUE(client_->StartPayment().ok());
  EXPECT_EQ(client_->RemainingPeriods().value(), 10u);
  Elapse(2 * 60);
  ASSERT_TRUE(client_->UpdateStatus().ok());
  EXPECT_LE(client_->RemainingPeriods().value(), 8u);
}

TEST_F(PaymentTest, ConservationOfFunds) {
  // Total wei across contract + both parties stays constant modulo gas.
  ASSERT_TRUE(client_->Deposit(U256(5'000)).ok());
  ASSERT_TRUE(client_->StartPayment().ok());
  auto& chain = deployment_->chain();
  Address client = deployment_->publisher().address();
  Address offchain = deployment_->node().address();
  Wei total_before = chain.BalanceOf(client) + chain.BalanceOf(offchain) +
                     chain.BalanceOf(payment_address_) +
                     chain.TotalFeesPaid(client) +
                     chain.TotalFeesPaid(offchain);
  Elapse(7 * 60);
  ASSERT_TRUE(client_->UpdateStatus().ok());
  ASSERT_TRUE(offchain_->WithdrawOffchain().ok());
  ASSERT_TRUE(client_->Terminate().ok());
  Wei total_after = chain.BalanceOf(client) + chain.BalanceOf(offchain) +
                    chain.BalanceOf(payment_address_) +
                    chain.TotalFeesPaid(client) +
                    chain.TotalFeesPaid(offchain);
  EXPECT_EQ(total_before, total_after);
}

}  // namespace
}  // namespace wedge
