#include "contracts/punishment.h"

#include <gtest/gtest.h>

#include "core/wedgeblock.h"

namespace wedge {
namespace {

/// End-to-end punishment scenarios: a real Offchain Node produces signed
/// stage-1 responses under various byzantine modes and the bound publisher
/// uses them as evidence (Algorithm 2).
class PunishmentTest : public ::testing::Test {
 protected:
  static DeploymentConfig Config(ByzantineMode mode) {
    DeploymentConfig config;
    config.node.batch_size = 8;
    config.node.worker_threads = 2;
    config.node.byzantine_mode = mode;
    config.escrow = EthToWei(32);
    return config;
  }

  static std::vector<std::pair<Bytes, Bytes>> Workload(int n) {
    std::vector<std::pair<Bytes, Bytes>> kvs;
    for (int i = 0; i < n; ++i) {
      kvs.emplace_back(ToBytes("key" + std::to_string(i)),
                       ToBytes("value" + std::to_string(i)));
    }
    return kvs;
  }
};

TEST_F(PunishmentTest, HonestNodeCannotBePunished) {
  auto d = Deployment::Create(Config(ByzantineMode::kHonest));
  ASSERT_TRUE(d.ok());
  auto& pub = (*d)->publisher();
  auto responses = pub.Publish(pub.MakeRequests(Workload(8)));
  ASSERT_TRUE(responses.ok());
  (*d)->AdvanceBlocks(5);

  // Stage 2 landed and matches.
  auto check = pub.CheckBlockchainCommit(responses->front());
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check.value(), CommitCheck::kBlockchainCommitted);

  // Honest evidence cannot draw the escrow.
  auto receipt = pub.TriggerPunishment(responses->front());
  ASSERT_TRUE(receipt.ok());
  EXPECT_FALSE(receipt->success);
  EXPECT_NE(receipt->revert_reason.find("no inconsistency"),
            std::string::npos);
  EXPECT_EQ((*d)->chain().BalanceOf((*d)->punishment_address()), EthToWei(32));
}

TEST_F(PunishmentTest, EquivocationForfeitsEscrow) {
  auto d = Deployment::Create(Config(ByzantineMode::kEquivocateRoot));
  ASSERT_TRUE(d.ok());
  auto& pub = (*d)->publisher();
  auto responses = pub.Publish(pub.MakeRequests(Workload(8)));
  ASSERT_TRUE(responses.ok());  // Stage-1 looks perfectly honest.
  (*d)->AdvanceBlocks(5);

  auto check = pub.CheckBlockchainCommit(responses->front());
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check.value(), CommitCheck::kMismatch);  // The lie is visible.

  Wei client_before = (*d)->chain().BalanceOf(pub.address());
  auto receipt = pub.TriggerPunishment(responses->front());
  ASSERT_TRUE(receipt.ok());
  EXPECT_TRUE(receipt->success);
  // Full escrow moved to the client (minus the gas the client paid).
  EXPECT_EQ((*d)->chain().BalanceOf((*d)->punishment_address()), Wei());
  EXPECT_EQ((*d)->chain().BalanceOf(pub.address()) + receipt->fee,
            client_before + EthToWei(32));
  // All-or-nothing: a second punishment attempt reverts.
  auto again = pub.TriggerPunishment(responses->back());
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->success);
}

TEST_F(PunishmentTest, OmittedStage2IsPunishableAfterGrace) {
  auto d = Deployment::Create(Config(ByzantineMode::kOmitStage2));
  ASSERT_TRUE(d.ok());
  auto& pub = (*d)->publisher();
  auto responses = pub.Publish(pub.MakeRequests(Workload(8)));
  ASSERT_TRUE(responses.ok());
  (*d)->AdvanceBlocks(10);  // Plenty of time; the digest never shows up.

  auto check = pub.CheckBlockchainCommit(responses->front());
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check.value(), CommitCheck::kNotYetCommitted);

  // Punishing a merely-missing root without a claim is rejected: the
  // node must first get a public deadline.
  auto premature = pub.TriggerPunishment(responses->front());
  ASSERT_TRUE(premature.ok());
  EXPECT_FALSE(premature->success);
  EXPECT_NE(premature->revert_reason.find("omission claim"),
            std::string::npos);

  // File the claim; during the grace period punishment still fails.
  auto claim = pub.FileOmissionClaim(0);
  ASSERT_TRUE(claim.ok());
  EXPECT_TRUE(claim->success);
  auto during_grace = pub.TriggerPunishment(responses->front());
  ASSERT_TRUE(during_grace.ok());
  EXPECT_FALSE(during_grace->success);

  // After the grace deadline the broken promise forfeits the escrow.
  (*d)->clock().AdvanceSeconds(601);
  (*d)->chain().PumpUntilNow();
  auto receipt = pub.TriggerPunishment(responses->front());
  ASSERT_TRUE(receipt.ok());
  EXPECT_TRUE(receipt->success);
}

TEST_F(PunishmentTest, HonestSlowNodeSurvivesOmissionClaim) {
  // An impatient client files a claim while the (honest) node's stage-2
  // transaction is still pending; once it lands, punishment is
  // impossible and duplicate claims are rejected.
  auto d = Deployment::Create(Config(ByzantineMode::kHonest));
  ASSERT_TRUE(d.ok());
  auto& pub = (*d)->publisher();
  auto responses = pub.Publish(pub.MakeRequests(Workload(8)));
  ASSERT_TRUE(responses.ok());
  // Digest not mined yet; claim is filed (mining the claim also mines
  // the digest, which is exactly the grace period's purpose).
  auto claim = pub.FileOmissionClaim(0);
  ASSERT_TRUE(claim.ok());
  (*d)->clock().AdvanceSeconds(601);
  (*d)->chain().PumpUntilNow();
  auto receipt = pub.TriggerPunishment(responses->front());
  ASSERT_TRUE(receipt.ok());
  EXPECT_FALSE(receipt->success);  // Root matches: no inconsistency.
  EXPECT_EQ((*d)->chain().BalanceOf((*d)->punishment_address()), EthToWei(32));
  // A claim against a committed position is pointless and rejected.
  auto again = pub.FileOmissionClaim(0);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->success);
}

TEST_F(PunishmentTest, OmissionClaimOnlyByBoundClient) {
  auto d = Deployment::Create(Config(ByzantineMode::kOmitStage2));
  ASSERT_TRUE(d.ok());
  auto& pub = (*d)->publisher();
  ASSERT_TRUE(pub.Publish(pub.MakeRequests(Workload(8))).ok());
  (*d)->AdvanceBlocks(2);

  Address stranger = KeyPair::FromSeed(4242).address();
  (*d)->chain().Fund(stranger, EthToWei(10));
  Transaction tx;
  tx.from = stranger;
  tx.to = (*d)->punishment_address();
  tx.method = "fileOmissionClaim";
  PutU64(tx.calldata, 0);
  auto id = (*d)->chain().Submit(tx);
  ASSERT_TRUE(id.ok());
  auto receipt = (*d)->chain().WaitForReceipt(id.value());
  ASSERT_TRUE(receipt.ok());
  EXPECT_FALSE(receipt->success);
}

TEST_F(PunishmentTest, SignedCorruptProofIsPunishable) {
  auto d = Deployment::Create(Config(ByzantineMode::kCorruptProof));
  ASSERT_TRUE(d.ok());
  auto& pub = (*d)->publisher();
  auto requests = pub.MakeRequests(Workload(8));
  // Publish() itself flags the bad proof at stage-1 verification.
  auto responses = pub.Publish(requests);
  EXPECT_FALSE(responses.ok());
  EXPECT_EQ(responses.status().code(), Code::kVerification);

  // Get the raw (signed, corrupt) responses directly and punish with one.
  auto raw = (*d)->node().Append(requests);
  ASSERT_TRUE(raw.ok());
  (*d)->AdvanceBlocks(5);
  auto receipt = pub.TriggerPunishment(raw->front());
  ASSERT_TRUE(receipt.ok());
  EXPECT_TRUE(receipt->success);  // Algorithm 2 case 2.
}

TEST_F(PunishmentTest, FabricatedEvidenceRejected) {
  auto d = Deployment::Create(Config(ByzantineMode::kHonest));
  ASSERT_TRUE(d.ok());
  auto& pub = (*d)->publisher();
  auto responses = pub.Publish(pub.MakeRequests(Workload(8)));
  ASSERT_TRUE(responses.ok());
  (*d)->AdvanceBlocks(5);

  // A malicious client tampers with the response and re-signs with its
  // own key: the signature no longer recovers to the Offchain Node.
  Stage1Response forged = responses->front();
  Bytes tampered_entry = forged.entry.get();
  tampered_entry.back() ^= 0xFF;
  forged.entry = std::move(tampered_entry);
  forged.offchain_signature =
      EcdsaSign(pub.key().private_key(), forged.SignedHash());
  auto receipt = pub.TriggerPunishment(forged);
  ASSERT_TRUE(receipt.ok());
  EXPECT_FALSE(receipt->success);
  EXPECT_NE(receipt->revert_reason.find("signature"), std::string::npos);
  EXPECT_EQ((*d)->chain().BalanceOf((*d)->punishment_address()), EthToWei(32));
}

TEST_F(PunishmentTest, TamperedReadDetectedAndPunished) {
  auto d = Deployment::Create(Config(ByzantineMode::kHonest));
  ASSERT_TRUE(d.ok());
  auto& pub = (*d)->publisher();
  auto responses = pub.Publish(pub.MakeRequests(Workload(8)));
  ASSERT_TRUE(responses.ok());
  (*d)->AdvanceBlocks(5);

  // The node turns malicious for reads only.
  (*d)->node().set_byzantine_mode(ByzantineMode::kTamperReadData);
  auto read = (*d)->node().ReadOne(EntryIndex{0, 3});
  ASSERT_TRUE(read.ok());
  // The forged response passes stage-1 verification (it is internally
  // consistent and signed!) ...
  EXPECT_TRUE(read->Verify((*d)->node().address()));
  // ... but its root cannot match the blockchain-committed one.
  auto check = pub.CheckBlockchainCommit(read.value());
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check.value(), CommitCheck::kMismatch);
  auto receipt = pub.TriggerPunishment(read.value());
  ASSERT_TRUE(receipt.ok());
  EXPECT_TRUE(receipt->success);
}

TEST_F(PunishmentTest, FinalizeOrPunishFlow) {
  // Honest path: finalizes without punishment.
  {
    auto d = Deployment::Create(Config(ByzantineMode::kHonest));
    ASSERT_TRUE(d.ok());
    auto& pub = (*d)->publisher();
    auto responses = pub.Publish(pub.MakeRequests(Workload(8)));
    ASSERT_TRUE(responses.ok());
    auto outcome = pub.FinalizeOrPunish(responses->front());
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome->check, CommitCheck::kBlockchainCommitted);
    EXPECT_FALSE(outcome->punishment_triggered);
  }
  // Equivocating path: punishes automatically.
  {
    auto d = Deployment::Create(Config(ByzantineMode::kEquivocateRoot));
    ASSERT_TRUE(d.ok());
    auto& pub = (*d)->publisher();
    auto responses = pub.Publish(pub.MakeRequests(Workload(8)));
    ASSERT_TRUE(responses.ok());
    auto outcome = pub.FinalizeOrPunish(responses->front());
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome->check, CommitCheck::kMismatch);
    EXPECT_TRUE(outcome->punishment_triggered);
    EXPECT_TRUE(outcome->punishment_receipt.success);
  }
  // Omission path: files the claim, waits out the grace, then punishes.
  {
    auto d = Deployment::Create(Config(ByzantineMode::kOmitStage2));
    ASSERT_TRUE(d.ok());
    auto& pub = (*d)->publisher();
    auto responses = pub.Publish(pub.MakeRequests(Workload(8)));
    ASSERT_TRUE(responses.ok());
    auto outcome = pub.FinalizeOrPunish(responses->front(), /*max_blocks=*/3);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome->check, CommitCheck::kNotYetCommitted);
    EXPECT_TRUE(outcome->punishment_triggered);
    EXPECT_TRUE(outcome->punishment_receipt.success);
  }
}

TEST_F(PunishmentTest, EscrowRefundLifecycle) {
  DeploymentConfig config = Config(ByzantineMode::kHonest);
  config.escrow_lock_seconds = 1000;
  auto d = Deployment::Create(config);
  ASSERT_TRUE(d.ok());
  Address offchain = (*d)->node().address();
  Address punishment = (*d)->punishment_address();
  auto& chain = (*d)->chain();

  auto refund = [&](const Address& sender) -> Receipt {
    Transaction tx;
    tx.from = sender;
    tx.to = punishment;
    tx.method = "refundEscrow";
    auto id = chain.Submit(tx);
    EXPECT_TRUE(id.ok());
    return chain.WaitForReceipt(id.value()).value();
  };

  // Too early.
  EXPECT_FALSE(refund(offchain).success);
  // Wrong caller.
  (*d)->clock().AdvanceSeconds(2000);
  chain.PumpUntilNow();
  EXPECT_FALSE(refund((*d)->publisher().address()).success);
  // Correct caller after the lock: full refund.
  Wei before = chain.BalanceOf(offchain);
  Receipt ok = refund(offchain);
  EXPECT_TRUE(ok.success);
  EXPECT_EQ(chain.BalanceOf(punishment), Wei());
  EXPECT_EQ(chain.BalanceOf(offchain) + ok.fee, before + EthToWei(32));
}

TEST_F(PunishmentTest, IsPunishedView) {
  auto d = Deployment::Create(Config(ByzantineMode::kEquivocateRoot));
  ASSERT_TRUE(d.ok());
  auto& pub = (*d)->publisher();
  auto raw = (*d)->chain().Call((*d)->punishment_address(), "isPunished", {});
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ((*raw)[0], 0);

  auto responses = pub.Publish(pub.MakeRequests(Workload(8)));
  ASSERT_TRUE(responses.ok());
  (*d)->AdvanceBlocks(5);
  ASSERT_TRUE(pub.TriggerPunishment(responses->front())->success);

  raw = (*d)->chain().Call((*d)->punishment_address(), "isPunished", {});
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ((*raw)[0], 1);
}

}  // namespace
}  // namespace wedge
