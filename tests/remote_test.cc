#include "core/remote.h"

#include <gtest/gtest.h>

#include "core/wedgeblock.h"

namespace wedge {
namespace {

class RemoteTest : public ::testing::Test {
 protected:
  void SetUp() override { Build(NetworkConfig{}); }

  void Build(const NetworkConfig& net) {
    DeploymentConfig config;
    config.node.batch_size = 4;
    config.node.worker_threads = 1;
    auto d = Deployment::Create(config);
    ASSERT_TRUE(d.ok());
    deployment_ = std::move(d).value();
    bus_ = std::make_unique<MessageBus>(&deployment_->clock(), net, 77);
    server_key_ = std::make_unique<KeyPair>(KeyPair::FromSeed(0xED6E));
    server_ = std::make_unique<RemoteNodeServer>(
        &deployment_->node(), *server_key_, bus_.get(), "offchain-node");
    client_key_ = std::make_unique<KeyPair>(KeyPair::FromSeed(0xC11E));
    client_ = std::make_unique<RemoteNodeClient>(
        *client_key_, bus_.get(), &deployment_->clock(), "offchain-node",
        server_key_->address());
  }

  std::vector<AppendRequest> MakeBatch(int n) {
    std::vector<AppendRequest> out;
    for (int i = 0; i < n; ++i) {
      out.push_back(AppendRequest::Make(*client_key_, seq_++,
                                        ToBytes("k" + std::to_string(i)),
                                        ToBytes("v")));
    }
    return out;
  }

  std::unique_ptr<Deployment> deployment_;
  std::unique_ptr<MessageBus> bus_;
  std::unique_ptr<KeyPair> server_key_, client_key_;
  std::unique_ptr<RemoteNodeServer> server_;
  std::unique_ptr<RemoteNodeClient> client_;
  uint64_t seq_ = 0;
};

TEST_F(RemoteTest, AppendOverTheWire) {
  auto responses = client_->Append(MakeBatch(4));
  ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  ASSERT_EQ(responses->size(), 4u);
  for (const auto& r : *responses) {
    EXPECT_TRUE(r.Verify(deployment_->node().address()));
  }
  EXPECT_EQ(server_->requests_served(), 1u);
  EXPECT_EQ(deployment_->node().LogPositions(), 1u);
}

TEST_F(RemoteTest, ReadOverTheWire) {
  ASSERT_TRUE(client_->Append(MakeBatch(4)).ok());
  auto read = client_->ReadOne(EntryIndex{0, 2});
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->Verify(deployment_->node().address()));
  auto missing = client_->ReadOne(EntryIndex{9, 0});
  EXPECT_FALSE(missing.ok());
  // Remote errors arrive typed (Status::FromWireString round-trip).
  EXPECT_EQ(missing.status().code(), Code::kNotFound);
}

TEST_F(RemoteTest, BatchReadOverTheWire) {
  ASSERT_TRUE(client_->Append(MakeBatch(4)).ok());
  auto batch = client_->ReadBatch(0, {0, 3});
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->entries.size(), 2u);
  EXPECT_TRUE(batch->Verify(deployment_->node().address()));
  auto whole = client_->ReadBatch(0, {});
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(whole->entries.size(), 4u);
}

TEST_F(RemoteTest, TotalOmissionTimesOut) {
  NetworkConfig lossy;
  lossy.drop_probability = 1.0;
  Build(lossy);
  auto result = client_->Append(MakeBatch(4));
  EXPECT_FALSE(result.ok());
  // Either the request or the machinery reports unavailability/timeouts.
  EXPECT_TRUE(result.status().code() == Code::kTimeout ||
              result.status().code() == Code::kUnavailable);
  EXPECT_EQ(deployment_->node().LogPositions(), 0u);
}

TEST_F(RemoteTest, RepliesFromImpostorIgnored) {
  // A second "server" with a different key at another endpoint cannot
  // satisfy the client even if it answers: the client pins the node
  // operator's transport address.
  KeyPair impostor = KeyPair::FromSeed(666);
  RemoteNodeServer fake(&deployment_->node(), impostor, bus_.get(),
                        "impostor-node");
  RemoteNodeClient pinned(*client_key_, bus_.get(), &deployment_->clock(),
                          "impostor-node", server_key_->address(),
                          /*rpc_timeout=*/200'000);
  auto result = pinned.Append(MakeBatch(4));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Code::kTimeout);
}

TEST_F(RemoteTest, MalformedTrafficIsDropped) {
  // Raw garbage to the server endpoint: no crash, no reply, no count.
  bus_->Send("nobody", "offchain-node", Bytes{1, 2, 3, 4});
  deployment_->clock().Advance(10'000);
  bus_->DeliverDue();
  EXPECT_EQ(server_->requests_served(), 0u);
  // A well-formed envelope with a tampered payload is also dropped.
  SignedEnvelope env = SignedEnvelope::Create(*client_key_, ToBytes("hi"));
  env.payload[0] ^= 1;
  bus_->Send("nobody", "offchain-node", env.Serialize());
  deployment_->clock().Advance(10'000);
  bus_->DeliverDue();
  EXPECT_EQ(server_->requests_served(), 0u);
}

TEST_F(RemoteTest, LatencyIsModeled) {
  NetworkConfig slow;
  slow.base_latency = 50'000;  // 50 ms each way.
  slow.jitter = 0;
  Build(slow);
  Micros before = deployment_->clock().NowMicros();
  ASSERT_TRUE(client_->Append(MakeBatch(4)).ok());
  Micros elapsed = deployment_->clock().NowMicros() - before;
  EXPECT_GE(elapsed, 100'000);  // Request + reply propagation.
}

TEST_F(RemoteTest, SequentialRpcsKeepWorking) {
  for (int round = 0; round < 3; ++round) {
    auto responses = client_->Append(MakeBatch(4));
    ASSERT_TRUE(responses.ok());
    EXPECT_EQ(responses->front().index.log_id, static_cast<uint64_t>(round));
  }
  EXPECT_EQ(server_->requests_served(), 3u);
}

TEST_F(RemoteTest, RpcTimesOutWhenReplyCannotBeatDeadline) {
  // One-way latency beyond the rpc timeout: the node serves the request,
  // but the reply cannot arrive before the deadline — the client must see
  // kTimeout (the omission surface), not a late success.
  NetworkConfig slow;
  slow.base_latency = 3 * kMicrosPerSecond;  // > default 2 s rpc timeout.
  slow.jitter = 0;
  Build(slow);
  auto result = client_->Append(MakeBatch(4));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Code::kTimeout);
  // The request itself did land — only the reply missed the deadline.
  EXPECT_EQ(server_->requests_served(), 1u);
}

TEST_F(RemoteTest, OversizeRequestRejectedLocallyBeforeSending) {
  RemoteNodeClient capped(*client_key_, bus_.get(), &deployment_->clock(),
                          "offchain-node", server_key_->address(),
                          /*rpc_timeout=*/2 * kMicrosPerSecond,
                          /*max_message_bytes=*/2048);
  std::vector<AppendRequest> batch;
  batch.push_back(
      AppendRequest::Make(*client_key_, seq_++, ToBytes("k"),
                          Bytes(4096, 0x55)));  // Serializes past the cap.
  auto result = capped.Append(batch);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Code::kInvalidArgument);
  // Nothing crossed the wire and nothing was logged.
  EXPECT_EQ(server_->requests_served(), 0u);
  EXPECT_EQ(deployment_->node().LogPositions(), 0u);
}

TEST_F(RemoteTest, OversizeRequestRejectedByServerWithTypedError) {
  RemoteNodeServer capped_server(&deployment_->node(), *server_key_,
                                 bus_.get(), "capped-node",
                                 /*max_message_bytes=*/1024);
  RemoteNodeClient client(*client_key_, bus_.get(), &deployment_->clock(),
                          "capped-node", server_key_->address());
  std::vector<AppendRequest> batch;
  batch.push_back(AppendRequest::Make(*client_key_, seq_++, ToBytes("k"),
                                      Bytes(2048, 0x55)));
  auto result = client.Append(batch);
  ASSERT_FALSE(result.ok());
  // The server's OutOfRange rejection arrives typed over the wire.
  EXPECT_EQ(result.status().code(), Code::kOutOfRange);
  EXPECT_EQ(deployment_->node().LogPositions(), 0u);
}

TEST_F(RemoteTest, MismatchedRpcIdIsNeverDeliveredToAWaiter) {
  // Seed the log and capture a genuine reply body to make the stale
  // response maximally plausible: well-signed by the real server key,
  // carrying a decodable Stage1Response — only the rpc_id is wrong.
  ASSERT_TRUE(client_->Append(MakeBatch(4)).ok());
  auto genuine = client_->ReadOne(EntryIndex{0, 0});
  ASSERT_TRUE(genuine.ok());
  Bytes stale_body = genuine->Serialize();
  Bytes stale_reply =
      RpcResponse::Success(/*id=*/9999, stale_body).Encode();

  // Case 1: stale reply races a live call. The client must skip it and
  // return the answer for the rpc_id it actually issued.
  SignedEnvelope stale1 =
      SignedEnvelope::Create(*server_key_, stale_reply);
  bus_->Send("offchain-node", client_->endpoint(), stale1.Serialize());
  auto read = client_->ReadOne(EntryIndex{0, 1});
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->index, (EntryIndex{0, 1}));  // Not the stale {0,0} entry.
  EXPECT_TRUE(read->Verify(deployment_->node().address()));

  // Case 2: the stale reply is the ONLY traffic (the real request goes to
  // a dead endpoint). If mismatched rpc_ids could satisfy a waiter, this
  // would "succeed" with the stale entry; instead it must time out.
  KeyPair other_key = KeyPair::FromSeed(0xAAAA);
  RemoteNodeClient blackholed(other_key, bus_.get(), &deployment_->clock(),
                              "no-such-endpoint", server_key_->address(),
                              /*rpc_timeout=*/200'000);
  SignedEnvelope stale2 =
      SignedEnvelope::Create(*server_key_, stale_reply);
  bus_->Send("offchain-node", blackholed.endpoint(), stale2.Serialize());
  auto result = blackholed.ReadOne(EntryIndex{0, 0});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Code::kTimeout);
}

}  // namespace
}  // namespace wedge
