#include "contracts/root_record.h"

#include <gtest/gtest.h>

#include "chain/blockchain.h"

namespace wedge {
namespace {

class RootRecordTest : public ::testing::Test {
 protected:
  RootRecordTest() : clock_(0), chain_(ChainConfig{}, &clock_) {
    offchain_ = KeyPair::FromSeed(1);
    intruder_ = KeyPair::FromSeed(2);
    chain_.Fund(offchain_.address(), EthToWei(100));
    chain_.Fund(intruder_.address(), EthToWei(100));
    auto contract = std::make_unique<RootRecordContract>(offchain_.address());
    contract_ = contract.get();
    address_ = chain_.Deploy(offchain_.address(), std::move(contract)).value();
  }

  Result<Receipt> UpdateRecords(const Address& sender, uint64_t start_idx,
                                const std::vector<Hash256>& roots) {
    Transaction tx;
    tx.from = sender;
    tx.to = address_;
    tx.method = "updateRecords";
    PutU64(tx.calldata, start_idx);
    PutU32(tx.calldata, static_cast<uint32_t>(roots.size()));
    for (const Hash256& r : roots) Append(tx.calldata, HashToBytes(r));
    WEDGE_ASSIGN_OR_RETURN(TxId id, chain_.Submit(tx));
    return chain_.WaitForReceipt(id);
  }

  Result<std::pair<bool, Hash256>> GetRoot(uint64_t idx) {
    Bytes query;
    PutU64(query, idx);
    WEDGE_ASSIGN_OR_RETURN(Bytes raw,
                           chain_.Call(address_, "getRootAtIndex", query));
    ByteReader reader(raw);
    WEDGE_ASSIGN_OR_RETURN(Bytes found, reader.ReadRaw(1));
    WEDGE_ASSIGN_OR_RETURN(Bytes root, reader.ReadRaw(32));
    WEDGE_ASSIGN_OR_RETURN(Hash256 h, HashFromBytes(root));
    return std::make_pair(found[0] != 0, h);
  }

  SimClock clock_;
  Blockchain chain_;
  KeyPair offchain_{KeyPair::FromSeed(1)};
  KeyPair intruder_{KeyPair::FromSeed(2)};
  RootRecordContract* contract_ = nullptr;
  Address address_;
};

TEST_F(RootRecordTest, AppendsSequentially) {
  Hash256 r0 = Sha256::Digest("root0");
  Hash256 r1 = Sha256::Digest("root1");
  auto receipt = UpdateRecords(offchain_.address(), 0, {r0, r1});
  ASSERT_TRUE(receipt.ok());
  EXPECT_TRUE(receipt->success);
  EXPECT_EQ(contract_->tail_idx(), 2u);

  auto got0 = GetRoot(0);
  ASSERT_TRUE(got0.ok());
  EXPECT_TRUE(got0->first);
  EXPECT_EQ(got0->second, r0);
  auto got2 = GetRoot(2);
  ASSERT_TRUE(got2.ok());
  EXPECT_FALSE(got2->first);
}

TEST_F(RootRecordTest, RejectsNonOffchainSender) {
  auto receipt =
      UpdateRecords(intruder_.address(), 0, {Sha256::Digest("evil")});
  ASSERT_TRUE(receipt.ok());
  EXPECT_FALSE(receipt->success);
  EXPECT_EQ(contract_->tail_idx(), 0u);
}

TEST_F(RootRecordTest, RejectsOutOfOrderStartIndex) {
  ASSERT_TRUE(UpdateRecords(offchain_.address(), 0, {Sha256::Digest("a")})
                  ->success);
  // Gap.
  EXPECT_FALSE(UpdateRecords(offchain_.address(), 2, {Sha256::Digest("b")})
                   ->success);
  // Replay of an already-written index: this is the write-once property
  // behind Definition 3.2.
  EXPECT_FALSE(UpdateRecords(offchain_.address(), 0, {Sha256::Digest("b")})
                   ->success);
  auto got = GetRoot(0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->second, Sha256::Digest("a"));  // Unchanged.
}

TEST_F(RootRecordTest, RejectsEmptyAndOversizedBatches) {
  EXPECT_FALSE(UpdateRecords(offchain_.address(), 0, {})->success);
  std::vector<Hash256> too_many(RootRecordContract::kMaxRootsPerCall + 1,
                                Sha256::Digest("x"));
  Transaction tx;
  tx.from = offchain_.address();
  tx.to = address_;
  tx.method = "updateRecords";
  PutU64(tx.calldata, 0);
  PutU32(tx.calldata, static_cast<uint32_t>(too_many.size()));
  for (const auto& r : too_many) Append(tx.calldata, HashToBytes(r));
  tx.gas_limit = 30'000'000;
  auto id = chain_.Submit(tx);
  ASSERT_TRUE(id.ok());
  auto receipt = chain_.WaitForReceipt(id.value());
  ASSERT_TRUE(receipt.ok());
  EXPECT_FALSE(receipt->success);
}

TEST_F(RootRecordTest, RejectsMalformedCalldata) {
  Transaction tx;
  tx.from = offchain_.address();
  tx.to = address_;
  tx.method = "updateRecords";
  PutU64(tx.calldata, 0);
  PutU32(tx.calldata, 3);  // Promises 3 roots, provides none.
  auto id = chain_.Submit(tx);
  ASSERT_TRUE(id.ok());
  auto receipt = chain_.WaitForReceipt(id.value());
  ASSERT_TRUE(receipt.ok());
  EXPECT_FALSE(receipt->success);
}

TEST_F(RootRecordTest, GasScalesWithRootCount) {
  auto one = UpdateRecords(offchain_.address(), 0, {Sha256::Digest("a")});
  std::vector<Hash256> five;
  for (int i = 0; i < 5; ++i) {
    five.push_back(Sha256::Digest("r" + std::to_string(i)));
  }
  auto batch = UpdateRecords(offchain_.address(), 1, five);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->success);
  // Five roots cost less than 5x one root (amortized tx base), but more
  // than one root (SSTORE per digest).
  EXPECT_GT(batch->gas_used, one->gas_used);
  EXPECT_LT(batch->gas_used, 5 * one->gas_used);
}

TEST_F(RootRecordTest, EmitsRecordsUpdatedEvent) {
  auto receipt = UpdateRecords(offchain_.address(), 0, {Sha256::Digest("a")});
  ASSERT_TRUE(receipt.ok());
  ASSERT_EQ(receipt->events.size(), 1u);
  EXPECT_EQ(receipt->events[0].name, "RecordsUpdated");
  ByteReader reader(receipt->events[0].payload);
  EXPECT_EQ(reader.ReadU64().value(), 0u);  // start_idx
  EXPECT_EQ(reader.ReadU64().value(), 1u);  // new tail
}

TEST_F(RootRecordTest, TailIdxView) {
  ASSERT_TRUE(UpdateRecords(offchain_.address(), 0, {Sha256::Digest("a")})
                  ->success);
  auto raw = chain_.Call(address_, "tailIdx", {});
  ASSERT_TRUE(raw.ok());
  ByteReader reader(raw.value());
  EXPECT_EQ(reader.ReadU64().value(), 1u);
}

TEST_F(RootRecordTest, UnknownMethodFails) {
  EXPECT_FALSE(chain_.Call(address_, "selfDestruct", {}).ok());
}

}  // namespace
}  // namespace wedge
