// Loopback end-to-end tests for the real TCP transport (src/rpc/):
// RpcServer + TcpNodeClient against a live Deployment on an ephemeral
// 127.0.0.1 port. Also replays the malformed-frame corpus against both the
// TCP server and the sim-bus server to pin down the shared hardening rules.
//
// Set WEDGE_SKIP_SOCKET_TESTS=1 to skip at runtime (sandboxes without
// loopback networking); the WEDGE_SKIP_SOCKET_TESTS CMake option removes
// the binary from the build entirely.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/remote.h"
#include "core/wedgeblock.h"
#include "rpc/rpc_server.h"
#include "rpc/tcp_client.h"

namespace wedge {
namespace {

bool SocketTestsDisabled() {
  const char* skip = std::getenv("WEDGE_SKIP_SOCKET_TESTS");
  return skip != nullptr && skip[0] == '1';
}

// Blocking loopback dial for raw-frame tests (the adversary's socket).
int DialLoopback(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  timeval tv{.tv_sec = 5, .tv_usec = 0};
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return fd;
}

bool WriteAll(int fd, const Bytes& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

// Reads frames off `fd` until one completes (or EOF / timeout).
Result<Bytes> ReadOneFrame(int fd) {
  FrameDecoder decoder;
  uint8_t buf[4096];
  while (true) {
    Bytes payload;
    auto got = decoder.Next(&payload);
    if (!got.ok()) return got.status();
    if (*got) return payload;
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n == 0) return Status::Unavailable("peer closed");
    if (n < 0) return Status::Timeout("read timed out");
    decoder.Feed(buf, static_cast<size_t>(n));
  }
}

class RpcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (SocketTestsDisabled()) {
      GTEST_SKIP() << "WEDGE_SKIP_SOCKET_TESTS=1";
    }
    DeploymentConfig config;
    config.node.batch_size = 4;
    config.node.worker_threads = 1;
    auto d = Deployment::Create(config);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    deployment_ = std::move(d).value();
    server_key_ = std::make_unique<KeyPair>(
        KeyPair::FromSeed(config.offchain_key_seed));
    RpcServerConfig server_config;  // Ephemeral port.
    server_ = std::make_unique<RpcServer>(&deployment_->node(), *server_key_,
                                          server_config,
                                          &deployment_->telemetry());
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Shutdown();
  }

  std::unique_ptr<TcpNodeClient> MakeClient(int pool_size = 1,
                                            Micros timeout = 5 *
                                                             kMicrosPerSecond) {
    TcpClientConfig config;
    config.port = server_->port();
    config.pool_size = pool_size;
    config.rpc_timeout = timeout;
    return std::make_unique<TcpNodeClient>(KeyPair::FromSeed(0xC11E),
                                           server_key_->address(), config);
  }

  static std::vector<AppendRequest> MakeBatch(const KeyPair& publisher,
                                              uint64_t& seq, int n,
                                              const std::string& tag = "k") {
    std::vector<AppendRequest> out;
    for (int i = 0; i < n; ++i) {
      out.push_back(AppendRequest::Make(publisher, seq++,
                                        ToBytes(tag + std::to_string(i)),
                                        ToBytes("v")));
    }
    return out;
  }

  std::unique_ptr<Deployment> deployment_;
  std::unique_ptr<KeyPair> server_key_;
  std::unique_ptr<RpcServer> server_;
};

TEST_F(RpcTest, AppendReadAndBatchReadOverLoopback) {
  auto client = MakeClient(/*pool_size=*/2);
  ASSERT_TRUE(client->Connect().ok());
  KeyPair publisher = KeyPair::FromSeed(0xC11E);
  uint64_t seq = 0;

  auto responses = client->Append(MakeBatch(publisher, seq, 4));
  ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  ASSERT_EQ(responses->size(), 4u);
  for (const auto& r : *responses) {
    EXPECT_TRUE(r.Verify(deployment_->node().address()));
  }

  auto read = client->ReadOne(EntryIndex{0, 2});
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->index, (EntryIndex{0, 2}));
  EXPECT_TRUE(read->Verify(deployment_->node().address()));

  auto missing = client->ReadOne(EntryIndex{9, 0});
  ASSERT_FALSE(missing.ok());
  // Remote errors arrive typed (Status::FromWireString round-trip).
  EXPECT_EQ(missing.status().code(), Code::kNotFound);

  auto batch = client->ReadBatch(0, {0, 3});
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->entries.size(), 2u);
  EXPECT_TRUE(batch->Verify(deployment_->node().address()));

  EXPECT_EQ(client->discarded_responses(), 0u);
  EXPECT_EQ(server_->requests_served(), 4u);
  client->Close();
}

TEST_F(RpcTest, ConcurrentPipelinedClientsEveryProofVerifies) {
  auto client = MakeClient(/*pool_size=*/2);
  ASSERT_TRUE(client->Connect().ok());
  constexpr int kThreads = 4;
  constexpr int kRounds = 6;
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      KeyPair publisher = KeyPair::FromSeed(1000 + t);
      uint64_t seq = 0;
      for (int round = 0; round < kRounds; ++round) {
        auto responses = client->Append(
            MakeBatch(publisher, seq, 4, "t" + std::to_string(t) + "-"));
        if (!responses.ok() || responses->size() != 4) {
          ++failures;
          continue;
        }
        for (const auto& r : *responses) {
          if (!r.Verify(deployment_->node().address())) ++failures;
        }
        auto read = client->ReadOne(responses->front().index);
        if (!read.ok() || read->index != responses->front().index ||
            !read->Verify(deployment_->node().address())) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(client->discarded_responses(), 0u);
  EXPECT_EQ(client->reconnects(), 0u);
  // One append + one read per round per thread.
  EXPECT_EQ(server_->requests_served(),
            static_cast<uint64_t>(kThreads * kRounds * 2));
  client->Close();
  server_->Shutdown();  // Graceful drain with clients having been active.
}

TEST_F(RpcTest, OutOfOrderResponsesOnOneSocket) {
  // pool_size=1 forces both threads onto one pipelined socket: a slow big
  // append and fast small reads interleave, so responses come back out of
  // order and must be correlated by rpc_id.
  auto client = MakeClient(/*pool_size=*/1);
  ASSERT_TRUE(client->Connect().ok());
  KeyPair publisher = KeyPair::FromSeed(0xC11E);
  uint64_t seq = 0;
  ASSERT_TRUE(client->Append(MakeBatch(publisher, seq, 4)).ok());

  std::atomic<int> failures{0};
  std::thread writer([&] {
    KeyPair big_publisher = KeyPair::FromSeed(2000);
    uint64_t big_seq = 0;
    for (int i = 0; i < 5; ++i) {
      std::vector<AppendRequest> batch;
      for (int j = 0; j < 32; ++j) {
        batch.push_back(AppendRequest::Make(big_publisher, big_seq++,
                                            ToBytes("big"),
                                            Bytes(16 * 1024, 0xAB)));
      }
      if (!client->Append(batch).ok()) ++failures;
    }
  });
  std::thread reader([&] {
    for (int i = 0; i < 40; ++i) {
      auto read = client->ReadOne(EntryIndex{0, static_cast<uint32_t>(i % 4)});
      if (!read.ok() ||
          read->index.offset != static_cast<uint32_t>(i % 4)) {
        ++failures;
      }
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(client->discarded_responses(), 0u);
  client->Close();
}

TEST_F(RpcTest, SimAndTcpTransportsAreCodecIdentical) {
  // The same deterministic workload through the sim bus and through TCP
  // must produce byte-identical stage-1 responses (RFC 6979 signing makes
  // the node's signatures deterministic). This is the protocol-identity
  // guarantee the shared codec exists for.
  DeploymentConfig config;
  config.node.batch_size = 4;
  config.node.worker_threads = 1;
  auto sim_deployment = Deployment::Create(config);
  ASSERT_TRUE(sim_deployment.ok());
  MessageBus bus(&(*sim_deployment)->clock(), NetworkConfig{}, 77);
  KeyPair sim_server_key = KeyPair::FromSeed(config.offchain_key_seed);
  RemoteNodeServer sim_server(&(*sim_deployment)->node(), sim_server_key,
                              &bus, "offchain-node");
  RemoteNodeClient sim_client(KeyPair::FromSeed(0xC11E), &bus,
                              &(*sim_deployment)->clock(), "offchain-node",
                              sim_server_key.address());

  auto tcp_client = MakeClient();
  ASSERT_TRUE(tcp_client->Connect().ok());

  KeyPair publisher = KeyPair::FromSeed(0xC11E);
  uint64_t sim_seq = 0, tcp_seq = 0;
  auto sim_responses = sim_client.Append(MakeBatch(publisher, sim_seq, 4));
  auto tcp_responses = tcp_client->Append(MakeBatch(publisher, tcp_seq, 4));
  ASSERT_TRUE(sim_responses.ok());
  ASSERT_TRUE(tcp_responses.ok());
  ASSERT_EQ(sim_responses->size(), tcp_responses->size());
  for (size_t i = 0; i < sim_responses->size(); ++i) {
    EXPECT_EQ((*sim_responses)[i].Serialize(), (*tcp_responses)[i].Serialize())
        << "response " << i << " differs across transports";
  }

  auto sim_read = sim_client.ReadOne(EntryIndex{0, 1});
  auto tcp_read = tcp_client->ReadOne(EntryIndex{0, 1});
  ASSERT_TRUE(sim_read.ok());
  ASSERT_TRUE(tcp_read.ok());
  EXPECT_EQ(sim_read->Serialize(), tcp_read->Serialize());
  tcp_client->Close();
}

TEST_F(RpcTest, MalformedFrameCorpusAgainstBothTransports) {
  // Build one valid append frame, then replay mutated copies against the
  // TCP server (raw sockets) and the sim server (raw bus sends). Neither
  // may crash, and both must keep serving valid traffic afterwards.
  KeyPair publisher = KeyPair::FromSeed(0xC11E);
  uint64_t seq = 0;
  RpcRequest request;
  request.rpc_id = 1;
  request.op = std::string(kOpAppend);
  request.body = EncodeAppendBody(MakeBatch(publisher, seq, 4));
  SignedEnvelope envelope =
      SignedEnvelope::Create(publisher, request.Encode());
  const Bytes payload = envelope.Serialize();
  const Bytes frame = EncodeFrame(payload);

  Rng rng(0xC0FFEE);
  // TCP side: a few adversarial connections, several mutants each.
  for (int conn = 0; conn < 8; ++conn) {
    int fd = DialLoopback(server_->port());
    ASSERT_GE(fd, 0);
    for (int m = 0; m < 8; ++m) {
      Bytes mutant = frame;
      size_t flips = 1 + rng.Uniform(8);
      for (size_t f = 0; f < flips; ++f) {
        mutant[rng.Uniform(mutant.size())] ^= 1 << rng.Uniform(8);
      }
      if (!WriteAll(fd, mutant)) break;  // Server closed on us: expected.
    }
    ::close(fd);
  }

  // Sim side: the same mutation schedule against the bus transport.
  MessageBus bus(&deployment_->clock(), NetworkConfig{}, 99);
  RemoteNodeServer sim_server(&deployment_->node(), *server_key_, &bus,
                              "offchain-node");
  for (int m = 0; m < 64; ++m) {
    Bytes mutant = payload;
    size_t flips = 1 + rng.Uniform(8);
    for (size_t f = 0; f < flips; ++f) {
      mutant[rng.Uniform(mutant.size())] ^= 1 << rng.Uniform(8);
    }
    bus.Send("adversary", "offchain-node", std::move(mutant));
    deployment_->clock().Advance(10'000);
    bus.DeliverDue();
  }

  // Both transports still serve valid traffic.
  EXPECT_TRUE(server_->running());
  auto tcp_client = MakeClient();
  auto responses = tcp_client->Append(MakeBatch(publisher, seq, 4));
  ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  for (const auto& r : *responses) {
    EXPECT_TRUE(r.Verify(deployment_->node().address()));
  }
  RemoteNodeClient sim_client(publisher, &bus, &deployment_->clock(),
                              "offchain-node", server_key_->address());
  EXPECT_TRUE(sim_client.Append(MakeBatch(publisher, seq, 4)).ok());
  tcp_client->Close();
}

TEST_F(RpcTest, OversizeAndGarbageFramesCloseTheConnection) {
  // Length field over the server's limit: connection must be closed.
  int fd = DialLoopback(server_->port());
  ASSERT_GE(fd, 0);
  Bytes header;
  PutU32(header, kFrameMagic);
  PutU32(header, static_cast<uint32_t>(kDefaultMaxFrameBytes + 1));
  ASSERT_TRUE(WriteAll(fd, header));
  uint8_t buf[16];
  EXPECT_EQ(::read(fd, buf, sizeof(buf)), 0);  // EOF: server closed.
  ::close(fd);

  // Garbage magic: same fate.
  fd = DialLoopback(server_->port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(WriteAll(fd, ToBytes("GET / HTTP/1.1\r\n\r\n")));
  EXPECT_EQ(::read(fd, buf, sizeof(buf)), 0);
  ::close(fd);

  // The server shrugs it off.
  EXPECT_TRUE(server_->running());
  auto client = MakeClient();
  KeyPair publisher = KeyPair::FromSeed(0xC11E);
  uint64_t seq = 0;
  EXPECT_TRUE(client->Append(MakeBatch(publisher, seq, 4)).ok());
  client->Close();
}

TEST_F(RpcTest, WellSignedUndecodableRequestGetsTypedErrorReply) {
  // A well-signed envelope whose payload has a readable rpc_id but is
  // otherwise garbage: the server must answer with an error response
  // carrying that rpc_id (not crash, not stay silent).
  KeyPair publisher = KeyPair::FromSeed(0xC11E);
  Bytes payload;
  PutU64(payload, 5555);
  PutU32(payload, 0xFFFFFFFF);  // Absurd op-name length.
  SignedEnvelope envelope = SignedEnvelope::Create(publisher, payload);
  int fd = DialLoopback(server_->port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(WriteAll(fd, EncodeFrame(envelope.Serialize())));

  auto reply = ReadOneFrame(fd);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  auto reply_env = SignedEnvelope::Deserialize(*reply);
  ASSERT_TRUE(reply_env.ok());
  EXPECT_TRUE(reply_env->Verify());
  EXPECT_EQ(reply_env->sender, server_key_->address());
  auto response = RpcResponse::Decode(reply_env->payload);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->rpc_id, 5555u);
  EXPECT_FALSE(response->ok);
  EXPECT_FALSE(response->error.empty());
  ::close(fd);
}

TEST_F(RpcTest, ClientReconnectsAfterServerRestart) {
  TcpClientConfig client_config;
  client_config.port = server_->port();
  client_config.rpc_timeout = 2 * kMicrosPerSecond;
  TcpNodeClient client(KeyPair::FromSeed(0xC11E), server_key_->address(),
                       client_config);
  ASSERT_TRUE(client.Connect().ok());
  KeyPair publisher = KeyPair::FromSeed(0xC11E);
  uint64_t seq = 0;
  ASSERT_TRUE(client.Append(MakeBatch(publisher, seq, 4)).ok());

  uint16_t port = server_->port();
  server_->Shutdown();
  EXPECT_FALSE(client.ReadOne(EntryIndex{0, 0}).ok());

  // Same node, same port: the client must redial with backoff and recover.
  RpcServerConfig server_config;
  server_config.port = port;
  RpcServer revived(&deployment_->node(), *server_key_, server_config);
  ASSERT_TRUE(revived.Start().ok());
  bool recovered = false;
  for (int attempt = 0; attempt < 100 && !recovered; ++attempt) {
    recovered = client.ReadOne(EntryIndex{0, 0}).ok();
    if (!recovered) ::usleep(50'000);
  }
  EXPECT_TRUE(recovered);
  EXPECT_GE(client.reconnects(), 1u);
  client.Close();
  revived.Shutdown();
}

TEST_F(RpcTest, DrainServesPipelinedRequestsAcrossHalfCloseAndRestart) {
  // A client pipelines requests and half-closes its write side before
  // reading any reply. The server has already TCP-acked those requests;
  // dropping the produced responses on EOF (or on shutdown) would be
  // acks-then-drops, which a restarting shard must never do. Big replies
  // make sure the write buffers cannot be flushed in one pass, so the
  // drain path itself is on the hook.
  KeyPair publisher = KeyPair::FromSeed(0xC11E);
  uint64_t seq = 0;
  std::vector<AppendRequest> big;
  std::vector<uint32_t> offsets;
  // One full batch (batch_size=4) of fat entries: every readBatch reply
  // below is ~1MB, so six pipelined replies cannot hide in the kernel
  // socket buffers while the peer is not reading.
  for (int i = 0; i < 4; ++i) {
    big.push_back(AppendRequest::Make(publisher, seq++, ToBytes("big"),
                                      Bytes(256 * 1024, 0xAB)));
    offsets.push_back(static_cast<uint32_t>(i));
  }
  {
    auto setup_client = MakeClient();
    ASSERT_TRUE(setup_client->Connect().ok());
    ASSERT_TRUE(setup_client->Append(big).ok());
    setup_client->Close();
  }

  constexpr int kPipelined = 6;
  Bytes wire;
  for (int i = 0; i < kPipelined; ++i) {
    RpcRequest request;
    request.rpc_id = 100 + static_cast<uint64_t>(i);
    request.op = std::string(kOpReadBatch);
    request.body = EncodeReadBatchBody(0, offsets);
    SignedEnvelope envelope =
        SignedEnvelope::Create(publisher, request.Encode());
    Bytes frame = EncodeFrame(envelope.Serialize());
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  int fd = DialLoopback(server_->port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(WriteAll(fd, wire));
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);  // Server sees EOF immediately.

  // One decoder across all replies: back-to-back frames straddle read
  // chunks, so per-call decoders (ReadOneFrame) would drop the tail.
  FrameDecoder decoder;
  uint8_t rbuf[64 * 1024];
  auto read_next_frame = [&]() -> Result<Bytes> {
    while (true) {
      Bytes payload;
      auto got = decoder.Next(&payload);
      if (!got.ok()) return got.status();
      if (*got) return payload;
      ssize_t n = ::read(fd, rbuf, sizeof(rbuf));
      if (n == 0) return Status::Unavailable("peer closed");
      if (n < 0) return Status::Timeout("read timed out");
      decoder.Feed(rbuf, static_cast<size_t>(n));
    }
  };
  std::set<uint64_t> rpc_ids;
  for (int i = 0; i < kPipelined; ++i) {
    auto reply = read_next_frame();
    ASSERT_TRUE(reply.ok())
        << "reply " << i << " lost: " << reply.status().ToString();
    auto envelope = SignedEnvelope::Deserialize(*reply);
    ASSERT_TRUE(envelope.ok());
    EXPECT_TRUE(envelope->Verify());
    auto response = RpcResponse::Decode(envelope->payload);
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response->ok) << response->error;
    rpc_ids.insert(response->rpc_id);
  }
  EXPECT_EQ(rpc_ids.size(), static_cast<size_t>(kPipelined));
  ::close(fd);

  // Restart path: graceful shutdown, then revive on the same port. The
  // drained node must come back serving the same log.
  uint16_t port = server_->port();
  server_->Shutdown();
  RpcServerConfig server_config;
  server_config.port = port;
  RpcServer revived(&deployment_->node(), *server_key_, server_config);
  ASSERT_TRUE(revived.Start().ok());
  auto client = MakeClient();
  bool recovered = false;
  for (int attempt = 0; attempt < 100 && !recovered; ++attempt) {
    auto read = client->ReadOne(EntryIndex{0, 0});
    recovered = read.ok() && read->Verify(deployment_->node().address());
    if (!recovered) ::usleep(50'000);
  }
  EXPECT_TRUE(recovered);
  client->Close();
  revived.Shutdown();
}

TEST_F(RpcTest, ShutdownIsIdempotentAndRefusesNewWork) {
  auto client = MakeClient(/*pool_size=*/1, /*timeout=*/kMicrosPerSecond);
  ASSERT_TRUE(client->Connect().ok());
  server_->Shutdown();
  server_->Shutdown();  // Idempotent.
  EXPECT_FALSE(server_->running());
  KeyPair publisher = KeyPair::FromSeed(0xC11E);
  uint64_t seq = 0;
  EXPECT_FALSE(client->Append(MakeBatch(publisher, seq, 4)).ok());
  client->Close();
  client->Close();  // Also idempotent.
}

}  // namespace
}  // namespace wedge
