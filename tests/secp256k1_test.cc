#include "crypto/secp256k1.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace wedge {
namespace secp256k1 {
namespace {

TEST(Secp256k1Test, GeneratorOnCurve) {
  EXPECT_TRUE(IsOnCurve(Generator()));
  EXPECT_FALSE(Generator().infinity);
}

TEST(Secp256k1Test, CurveConstantsConsistent) {
  // p + c == 2^256 (wraps to zero).
  EXPECT_TRUE((FieldPrime() + FieldC()).IsZero());
  EXPECT_TRUE((GroupOrder() + OrderC()).IsZero());
}

TEST(Secp256k1Test, FieldInverse) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) {
    U256 a = U256::Mod(U256(rng.Next(), rng.Next(), rng.Next(), rng.Next()),
                       FieldPrime());
    if (a.IsZero()) continue;
    EXPECT_EQ(FpMul(a, FpInv(a)), U256::One());
  }
}

TEST(Secp256k1Test, FieldSqrtRoundTrip) {
  Rng rng(12);
  int roots_found = 0;
  for (int i = 0; i < 20; ++i) {
    U256 a = U256::Mod(U256(rng.Next(), rng.Next(), rng.Next(), rng.Next()),
                       FieldPrime());
    U256 sq = FpSqr(a);
    auto root = FpSqrt(sq);
    ASSERT_TRUE(root.ok());
    // Root of a^2 is ±a.
    EXPECT_TRUE(root.value() == a ||
                root.value() == FpSub(U256::Zero(), a));
    ++roots_found;
  }
  EXPECT_EQ(roots_found, 20);
}

TEST(Secp256k1Test, SqrtOfNonResidueFails) {
  // Exactly one of x and -x (for x != 0) generates a non-residue when x^2
  // is replaced by a known non-residue. Find one by trial.
  Rng rng(13);
  bool found_failure = false;
  for (int i = 0; i < 40 && !found_failure; ++i) {
    U256 a = U256::Mod(U256(rng.Next(), rng.Next(), rng.Next(), rng.Next()),
                       FieldPrime());
    if (!FpSqrt(a).ok()) found_failure = true;
  }
  EXPECT_TRUE(found_failure);  // ~half of field elements are non-residues.
}

TEST(Secp256k1Test, DoubleMatchesAdd) {
  AffinePoint g = Generator();
  EXPECT_EQ(Double(g), Add(g, g));
  AffinePoint g2 = Double(g);
  EXPECT_TRUE(IsOnCurve(g2));
  AffinePoint g4a = Double(g2);
  AffinePoint g4b = Add(g2, Add(g, g));
  EXPECT_EQ(g4a, g4b);
}

TEST(Secp256k1Test, AdditionIdentities) {
  AffinePoint g = Generator();
  AffinePoint inf = AffinePoint::Infinity();
  EXPECT_EQ(Add(g, inf), g);
  EXPECT_EQ(Add(inf, g), g);
  EXPECT_TRUE(Add(inf, inf).infinity);
  // P + (-P) = identity.
  EXPECT_TRUE(Add(g, Negate(g)).infinity);
}

TEST(Secp256k1Test, ScalarMulBasics) {
  AffinePoint g = Generator();
  EXPECT_TRUE(ScalarMul(g, U256::Zero()).infinity);
  EXPECT_EQ(ScalarMul(g, U256::One()), g);
  EXPECT_EQ(ScalarMul(g, U256(2)), Double(g));
  EXPECT_EQ(ScalarMul(g, U256(3)), Add(Double(g), g));
  // n * G = identity.
  EXPECT_TRUE(ScalarMul(g, GroupOrder()).infinity);
  // (n-1) * G = -G.
  EXPECT_EQ(ScalarMul(g, GroupOrder() - U256(1)), Negate(g));
}

TEST(Secp256k1Test, FixedBaseMatchesGeneric) {
  Rng rng(14);
  for (int i = 0; i < 8; ++i) {
    U256 k(rng.Next(), rng.Next(), rng.Next(), rng.Next());
    EXPECT_EQ(ScalarMulBase(k), ScalarMul(Generator(), k));
  }
  EXPECT_TRUE(ScalarMulBase(U256::Zero()).infinity);
  EXPECT_TRUE(ScalarMulBase(GroupOrder()).infinity);
}

TEST(Secp256k1Test, ScalarMulReducesModOrder) {
  // Documented contract on ScalarMul/ScalarMulBase: the scalar is
  // ALWAYS reduced mod n first, so callers must never compare raw
  // 256-bit scalars for point equality. (The full cross-backend corpus
  // lives in ec_equiv_test.cc.)
  AffinePoint p = ScalarMulBase(U256(9));
  EXPECT_EQ(ScalarMul(p, GroupOrder() + U256(5)), ScalarMul(p, U256(5)));
  EXPECT_EQ(ScalarMulBase(GroupOrder() + U256(1)), Generator());
}

TEST(Secp256k1Test, BatchInversionRoundTrip) {
  Rng rng(77);
  U256 xs[16];
  for (auto& x : xs) {
    do {
      x = U256::Mod(U256(rng.Next(), rng.Next(), rng.Next(), rng.Next()),
                    FieldPrime());
    } while (x.IsZero());
  }
  U256 inv[16];
  FpInvMany(xs, 16, inv);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(FpMul(xs[i], inv[i]), U256::One()) << "i = " << i;
  }
}

TEST(Secp256k1Test, ScalarMulDistributesOverAddition) {
  Rng rng(15);
  U256 k1 = FnReduce(U256(rng.Next(), rng.Next(), rng.Next(), rng.Next()));
  U256 k2 = FnReduce(U256(rng.Next(), rng.Next(), rng.Next(), rng.Next()));
  AffinePoint lhs = ScalarMulBase(FnAdd(k1, k2));
  AffinePoint rhs = Add(ScalarMulBase(k1), ScalarMulBase(k2));
  EXPECT_EQ(lhs, rhs);
}

TEST(Secp256k1Test, DoubleScalarMulBaseMatchesSeparate) {
  Rng rng(16);
  for (int i = 0; i < 5; ++i) {
    U256 u1 = FnReduce(U256(rng.Next(), rng.Next(), rng.Next(), rng.Next()));
    U256 u2 = FnReduce(U256(rng.Next(), rng.Next(), rng.Next(), rng.Next()));
    AffinePoint p = ScalarMulBase(U256(rng.Next() | 1));
    AffinePoint lhs = DoubleScalarMulBase(u1, p, u2);
    AffinePoint rhs = Add(ScalarMulBase(u1), ScalarMul(p, u2));
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(Secp256k1Test, ScalarArithmetic) {
  const U256& n = GroupOrder();
  U256 a = n - U256(5);
  EXPECT_EQ(FnAdd(a, U256(10)), U256(5));
  EXPECT_EQ(FnSub(U256(3), U256(5)), n - U256(2));
  U256 x(123456789);
  EXPECT_EQ(FnMul(x, FnInv(x)), U256::One());
  EXPECT_EQ(FnReduce(n), U256::Zero());
  EXPECT_EQ(FnReduce(n + U256(7)), U256(7));
}

TEST(Secp256k1Test, LiftXRecoversBothParities) {
  AffinePoint g = Generator();
  auto even = LiftX(g.x, false);
  auto odd = LiftX(g.x, true);
  ASSERT_TRUE(even.ok());
  ASSERT_TRUE(odd.ok());
  EXPECT_NE(even->y, odd->y);
  EXPECT_TRUE(even.value() == g || odd.value() == g);
  EXPECT_EQ(FpAdd(even->y, odd->y), U256::Zero());  // y + (-y) = 0 mod p.
}

TEST(Secp256k1Test, UncompressedEncodingRoundTrip) {
  AffinePoint p = ScalarMulBase(U256(987654321));
  auto enc = EncodeUncompressed(p);
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc->size(), 65u);
  EXPECT_EQ((*enc)[0], 0x04);
  auto dec = DecodeUncompressed(enc.value());
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec.value(), p);
}

TEST(Secp256k1Test, CompressedEncodingRoundTrip) {
  Rng rng(17);
  for (int i = 0; i < 5; ++i) {
    AffinePoint p = ScalarMulBase(U256(rng.Next() | 1));
    auto enc = EncodeCompressed(p);
    ASSERT_TRUE(enc.ok());
    EXPECT_EQ(enc->size(), 33u);
    auto dec = DecodeCompressed(enc.value());
    ASSERT_TRUE(dec.ok());
    EXPECT_EQ(dec.value(), p);
  }
}

TEST(Secp256k1Test, DecodeRejectsCorruptPoints) {
  AffinePoint p = ScalarMulBase(U256(42));
  auto enc = EncodeUncompressed(p);
  ASSERT_TRUE(enc.ok());
  Bytes bad = enc.value();
  bad[40] ^= 0x01;  // Corrupt a Y byte.
  EXPECT_FALSE(DecodeUncompressed(bad).ok());
  EXPECT_FALSE(DecodeUncompressed(Bytes(10, 0)).ok());
  EXPECT_FALSE(EncodeUncompressed(AffinePoint::Infinity()).ok());
}

TEST(Secp256k1Test, PointNotOnCurveDetected) {
  AffinePoint bogus;
  bogus.x = U256(1);
  bogus.y = U256(1);
  bogus.infinity = false;
  EXPECT_FALSE(IsOnCurve(bogus));
}

}  // namespace
}  // namespace secp256k1
}  // namespace wedge
