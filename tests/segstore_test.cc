// Invariant tests for the segmented storage engine
// (storage/segstore/): WAL torn-tail truncation, crash windows inside
// the seal sequence, double-recovery idempotence, group-commit
// visibility, and tenant GC preserving live entries byte-identically
// with every proof still verifying. The FileLogStore fault-injection
// tests (typed IoError, no acked-then-lost window) ride along because
// they pin the same contract on the flat backend.

#include "storage/segstore/segment_store.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <thread>

#include "common/random.h"
#include "core/data_model.h"
#include "core/rpc_codec.h"
#include "merkle/merkle_tree.h"
#include "shard/sharded_engine.h"
#include "storage/backend.h"

namespace wedge {
namespace {

std::string TempDir(const char* tag) {
  std::string dir = std::filesystem::temp_directory_path() /
                    (std::string("wedge_segstore_") + tag + "_" +
                     std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir;
}

LogPosition MakePosition(uint64_t id, size_t entries, uint64_t seed = 7) {
  Rng rng(seed + id);
  LogPosition pos;
  pos.log_id = id;
  for (size_t i = 0; i < entries; ++i) {
    pos.data_list.push_back(rng.NextBytes(40));
  }
  pos.mroot = MerkleTree::Build(pos.data_list)->Root();
  return pos;
}

/// A position whose every entry is a serialized AppendRequest signed by
/// `publisher` — the shape OffchainNode stores, and the only shape the
/// GC owner attribution recognizes.
LogPosition MakeOwnedPosition(uint64_t id, const KeyPair& publisher,
                              uint64_t* seq, size_t entries = 3) {
  LogPosition pos;
  pos.log_id = id;
  for (size_t i = 0; i < entries; ++i) {
    AppendRequest req =
        AppendRequest::Make(publisher, (*seq)++, ToBytes("k"),
                            ToBytes("value-" + std::to_string(id)));
    pos.data_list.push_back(req.Serialize());
  }
  pos.mroot = MerkleTree::Build(pos.data_list)->Root();
  return pos;
}

SegmentLogStore::Options SmallSegments(uint32_t positions = 4) {
  SegmentLogStore::Options options;
  options.segment_positions = positions;
  return options;
}

std::unique_ptr<SegmentLogStore> OpenOrDie(const std::string& dir,
                                           const SegmentLogStore::Options& o) {
  auto store = SegmentLogStore::Open(dir, o);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return store.ok() ? std::move(store).value() : nullptr;
}

TEST(SegmentStoreTest, AppendGetScanAcrossSealBoundaries) {
  std::string dir = TempDir("basic");
  auto store = OpenOrDie(dir, SmallSegments());
  for (uint64_t i = 0; i < 11; ++i) {
    ASSERT_TRUE(store->Append(MakePosition(i, 3)).ok());
  }
  // 11 positions at 4/segment: two sealed segments + a 3-position WAL.
  EXPECT_EQ(store->Size(), 11u);
  EXPECT_EQ(store->SegmentCount(), 2u);
  for (uint64_t i = 0; i < 11; ++i) {
    auto got = store->Get(i);
    ASSERT_TRUE(got.ok()) << i << ": " << got.status().ToString();
    LogPosition want = MakePosition(i, 3);
    EXPECT_EQ(got->data_list, want.data_list);
    EXPECT_EQ(got->mroot, want.mroot);
    EXPECT_EQ(store->GetRoot(i).value(), want.mroot);
    EXPECT_EQ(store->GetEntryCount(i).value(), 3u);
  }
  auto entry = store->GetEntry(EntryIndex{5, 2});
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry.value(), MakePosition(5, 3).data_list[2]);

  std::vector<uint64_t> seen;
  ASSERT_TRUE(store
                  ->Scan(2, 9,
                         [&](const LogPosition& p) {
                           seen.push_back(p.log_id);
                           return true;
                         })
                  .ok());
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(seen.front(), 2u);
  EXPECT_EQ(seen.back(), 9u);

  EXPECT_FALSE(store->Get(11).ok());
  EXPECT_FALSE(store->Append(MakePosition(13, 2)).ok());  // Gap.
}

TEST(SegmentStoreTest, ReopenRecoversSegmentsAndWalTail) {
  std::string dir = TempDir("reopen");
  {
    auto store = OpenOrDie(dir, SmallSegments());
    for (uint64_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(store->Append(MakePosition(i, 2)).ok());
    }
  }
  auto reopened = OpenOrDie(dir, SmallSegments());
  const auto& info = reopened->recovery();
  EXPECT_EQ(info.segments, 2u);
  EXPECT_EQ(info.sealed_positions, 8u);
  EXPECT_EQ(info.wal_positions, 2u);
  EXPECT_EQ(info.wal_skipped, 0u);
  EXPECT_EQ(info.wal_truncated_bytes, 0u);
  EXPECT_EQ(reopened->Size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(reopened->Get(i)->mroot, MakePosition(i, 2).mroot) << i;
  }
  // The recovered store keeps appending where it left off.
  ASSERT_TRUE(reopened->Append(MakePosition(10, 2)).ok());
  EXPECT_EQ(reopened->Size(), 11u);
}

TEST(SegmentStoreTest, TruncatesTornWalTail) {
  std::string dir = TempDir("torn");
  {
    auto store = OpenOrDie(dir, SmallSegments(/*positions=*/64));
    for (uint64_t i = 0; i < 5; ++i) {
      ASSERT_TRUE(store->Append(MakePosition(i, 2)).ok());
    }
  }
  std::string wal = dir + "/wal.log";
  auto size = std::filesystem::file_size(wal);
  std::filesystem::resize_file(wal, size - 10);

  auto reopened = OpenOrDie(dir, SmallSegments(/*positions=*/64));
  EXPECT_EQ(reopened->Size(), 4u);  // Torn record 4 dropped.
  EXPECT_GT(reopened->recovery().wal_truncated_bytes, 0u);
  // The tail is reusable: a replacement append for id 4 lands and a
  // fresh replay sees no remnant of the torn record.
  LogPosition replacement = MakePosition(4, 2, /*seed=*/99);
  ASSERT_TRUE(reopened->Append(replacement).ok());
  reopened.reset();
  auto final_store = OpenOrDie(dir, SmallSegments(/*positions=*/64));
  EXPECT_EQ(final_store->Size(), 5u);
  EXPECT_EQ(final_store->Get(4)->data_list, replacement.data_list);
  EXPECT_EQ(final_store->recovery().wal_truncated_bytes, 0u);
}

TEST(SegmentStoreTest, CrashBeforeSegmentRenameLeavesWalAuthoritative) {
  std::string dir = TempDir("crash_tmp");
  {
    SegmentLogStore::Options options = SmallSegments();
    options.crash_point = SegmentLogStore::CrashPoint::kSealAfterTempWrite;
    auto store = OpenOrDie(dir, options);
    for (uint64_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(store->Append(MakePosition(i, 2)).ok());
    }
    // The 4th append crosses the seal threshold; the simulated crash
    // leaves seg-000000.seg.tmp on disk, never renamed, and poisons the
    // store the way a dead process stops answering.
    EXPECT_FALSE(store->Append(MakePosition(3, 2)).ok());
  }
  EXPECT_TRUE(std::filesystem::exists(dir + "/seg-000000.seg.tmp"));

  auto reopened = OpenOrDie(dir, SmallSegments());
  const auto& info = reopened->recovery();
  EXPECT_EQ(info.tmp_files_removed, 1u);
  EXPECT_EQ(info.segments, 0u);  // The un-renamed segment never existed.
  EXPECT_EQ(info.wal_positions, 4u);  // The WAL still held everything.
  EXPECT_EQ(reopened->Size(), 4u);
  EXPECT_FALSE(std::filesystem::exists(dir + "/seg-000000.seg.tmp"));
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(reopened->Get(i)->mroot, MakePosition(i, 2).mroot) << i;
  }
}

TEST(SegmentStoreTest, CrashBetweenSealAndWalTruncateDeduplicates) {
  std::string dir = TempDir("crash_wal");
  {
    SegmentLogStore::Options options = SmallSegments();
    options.crash_point = SegmentLogStore::CrashPoint::kSealBeforeWalTruncate;
    auto store = OpenOrDie(dir, options);
    for (uint64_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(store->Append(MakePosition(i, 2)).ok());
    }
    EXPECT_FALSE(store->Append(MakePosition(3, 2)).ok());
  }
  // The segment landed but the WAL still holds ids 0..3.
  EXPECT_TRUE(std::filesystem::exists(dir + "/seg-000000.seg"));
  EXPECT_GT(std::filesystem::file_size(dir + "/wal.log"), 0u);

  auto reopened = OpenOrDie(dir, SmallSegments());
  const auto& info = reopened->recovery();
  EXPECT_EQ(info.segments, 1u);
  EXPECT_EQ(info.sealed_positions, 4u);
  EXPECT_EQ(info.wal_skipped, 4u);  // Every WAL record was already sealed.
  EXPECT_EQ(info.wal_positions, 0u);
  EXPECT_EQ(reopened->Size(), 4u);  // No duplicates.
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(reopened->Get(i)->mroot, MakePosition(i, 2).mroot) << i;
  }
  ASSERT_TRUE(reopened->Append(MakePosition(4, 2)).ok());
  EXPECT_EQ(reopened->Size(), 5u);
}

TEST(SegmentStoreTest, DoubleRecoveryIsIdempotent) {
  std::string dir = TempDir("double");
  {
    SegmentLogStore::Options options = SmallSegments();
    options.crash_point = SegmentLogStore::CrashPoint::kSealBeforeWalTruncate;
    auto store = OpenOrDie(dir, options);
    for (uint64_t i = 0; i < 4; ++i) {
      (void)store->Append(MakePosition(i, 2));
    }
  }
  // First recovery repairs (skips sealed WAL records, rewrites the WAL);
  // the second finds a clean directory and nothing to repair.
  { OpenOrDie(dir, SmallSegments()); }
  auto second = OpenOrDie(dir, SmallSegments());
  const auto& info = second->recovery();
  EXPECT_EQ(info.wal_skipped, 0u);
  EXPECT_EQ(info.wal_truncated_bytes, 0u);
  EXPECT_EQ(info.tmp_files_removed, 0u);
  EXPECT_EQ(second->Size(), 4u);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(second->Get(i)->mroot, MakePosition(i, 2).mroot) << i;
  }
}

TEST(SegmentStoreTest, PreparedButUnsyncedPositionsAreInvisible) {
  std::string dir = TempDir("visibility");
  auto store = OpenOrDie(dir, SmallSegments(/*positions=*/64));
  auto token = store->AppendPrepare(MakePosition(0, 2));
  ASSERT_TRUE(token.ok()) << token.status().ToString();
  // Prepared ≠ durable: nothing downstream may see the position until
  // WaitDurable returns — a crash here must be able to revoke it.
  EXPECT_EQ(store->Size(), 0u);
  EXPECT_FALSE(store->Get(0).ok());
  ASSERT_TRUE(store->WaitDurable(*token).ok());
  EXPECT_EQ(store->Size(), 1u);
  EXPECT_TRUE(store->Get(0).ok());
}

TEST(SegmentStoreTest, GroupCommitCoalescesConcurrentAppenders) {
  std::string dir = TempDir("group");
  MetricsRegistry metrics;
  SegmentLogStore::Options options = SmallSegments(/*positions=*/1024);
  options.metrics = &metrics;
  auto store = OpenOrDie(dir, options);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::mutex ticket_mu;
  uint64_t next_id = 0;
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        uint64_t token;
        {
          // Mirrors the engine's seal ticket: prepares are serialized,
          // durability waits overlap and coalesce.
          std::lock_guard<std::mutex> lock(ticket_mu);
          auto prepared = store->AppendPrepare(MakePosition(next_id, 2));
          if (!prepared.ok()) {
            failures.fetch_add(1);
            continue;
          }
          ++next_id;
          token = *prepared;
        }
        if (!store->WaitDurable(token).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(store->Size(), uint64_t{kThreads * kPerThread});

  MetricsSnapshot snap = metrics.Snapshot();
  const HistogramSnapshot* batch =
      snap.FindHistogram("wedge.store.group_commit_batch");
  ASSERT_NE(batch, nullptr);
  // Coalescing happened: fewer syncs than appends, i.e. some sync
  // covered more than one append.
  EXPECT_LT(batch->count, uint64_t{kThreads * kPerThread});
  EXPECT_GT(batch->count, 0u);
}

TEST(SegmentStoreTest, OwnerAttributionMatchesPublisherTenant) {
  KeyPair publisher = KeyPair::FromSeed(0xABCD);
  uint64_t seq = 0;
  LogPosition pos = MakeOwnedPosition(0, publisher, &seq);
  // The GC owner derived from raw leaf bytes must agree with the
  // admission-control identity derived from the key, or RetireTenant
  // would drop the wrong tenant's data.
  EXPECT_EQ(PositionOwnerTenant(pos), PublisherTenant(publisher.address()));
  // Mixed or unattributable positions are never GC-eligible.
  LogPosition anon = MakePosition(1, 2);
  EXPECT_EQ(PositionOwnerTenant(anon), kMixedOwnerTenant);
}

TEST(SegmentStoreTest, CompactionDropsRetiredAndPreservesLiveBytes) {
  std::string dir = TempDir("gc");
  KeyPair pub_a = KeyPair::FromSeed(0xA);
  KeyPair pub_b = KeyPair::FromSeed(0xB);
  uint64_t tenant_a = PublisherTenant(pub_a.address());
  uint64_t tenant_b = PublisherTenant(pub_b.address());
  uint64_t seq_a = 0, seq_b = 0;

  auto store = OpenOrDie(dir, SmallSegments(/*positions=*/2));
  // Interleave owners across three sealed segments + no WAL tail.
  std::vector<LogPosition> originals;
  for (uint64_t i = 0; i < 6; ++i) {
    LogPosition pos = i % 2 == 0 ? MakeOwnedPosition(i, pub_a, &seq_a)
                                 : MakeOwnedPosition(i, pub_b, &seq_b);
    originals.push_back(pos);
    ASSERT_TRUE(store->Append(pos).ok());
  }
  ASSERT_EQ(store->SegmentCount(), 3u);

  ASSERT_TRUE(store->RetireTenant(tenant_a).ok());
  auto stats = store->Compact();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->segments_rewritten, 3u);
  EXPECT_EQ(stats->positions_dropped, 3u);
  EXPECT_GT(stats->bytes_reclaimed, 0u);

  for (uint64_t i = 0; i < 6; ++i) {
    if (i % 2 == 0) {
      // Retired: payload gone, but the position still answers for
      // proofs — log-id density, root, and entry count survive.
      auto got = store->Get(i);
      EXPECT_FALSE(got.ok());
      EXPECT_EQ(got.status().code(), Code::kNotFound);
      EXPECT_EQ(store->GetRoot(i).value(), originals[i].mroot);
      EXPECT_EQ(store->GetEntryCount(i).value(), 3u);
    } else {
      // Live: byte-identical to what was acked.
      auto got = store->Get(i);
      ASSERT_TRUE(got.ok()) << i;
      EXPECT_EQ(got->data_list, originals[i].data_list);
      EXPECT_EQ(got->mroot, originals[i].mroot);
      // Stage-1 material still verifies: rebuilt tree root matches and
      // the leaves deserialize back to signature-valid requests.
      EXPECT_EQ(MerkleTree::Build(got->data_list)->Root(), got->mroot);
      for (const SharedBytes& leaf : got->data_list) {
        auto req = AppendRequest::Deserialize(leaf);
        ASSERT_TRUE(req.ok());
        EXPECT_TRUE(req->VerifySignature());
      }
    }
  }
  // Scan skips GC'd positions instead of failing.
  std::vector<uint64_t> seen;
  ASSERT_TRUE(store
                  ->Scan(0, 5,
                         [&](const LogPosition& p) {
                           seen.push_back(p.log_id);
                           return true;
                         })
                  .ok());
  EXPECT_EQ(seen, (std::vector<uint64_t>{1, 3, 5}));

  // A second pass finds nothing left to reclaim.
  auto again = store->Compact();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->segments_rewritten, 0u);

  // The retired set and tombstones survive a restart.
  (void)tenant_b;
  store.reset();
  auto reopened = OpenOrDie(dir, SmallSegments(/*positions=*/2));
  EXPECT_EQ(reopened->RetiredTenants().count(tenant_a), 1u);
  EXPECT_FALSE(reopened->Get(0).ok());
  EXPECT_EQ(reopened->GetRoot(0).value(), originals[0].mroot);
  EXPECT_EQ(reopened->Get(1)->data_list, originals[1].data_list);
}

TEST(SegmentStoreTest, RejectsMixedOwnerRetirement) {
  std::string dir = TempDir("gc_mixed");
  auto store = OpenOrDie(dir, SmallSegments());
  EXPECT_FALSE(store->RetireTenant(kMixedOwnerTenant).ok());
}

// ---------------------------------------------------------------------
// Engine-level GC: proofs over retired neighbors keep verifying.

TEST(SegmentStoreEngineTest, CompactionKeepsLiveProofsVerifying) {
  std::string dir = TempDir("engine_gc");
  std::filesystem::create_directories(dir);
  KeyPair pub_a = KeyPair::FromSeed(0x1111);
  KeyPair pub_b = KeyPair::FromSeed(0x2222);
  // Wire tenant id == authenticated owner id, so the engine's routed
  // RetireTenant names the same tenant the store's GC attribution sees.
  TenantId tenant_a = PublisherTenant(pub_a.address());
  TenantId tenant_b = PublisherTenant(pub_b.address());

  ShardedDeploymentConfig config;
  config.engine.num_shards = 2;
  config.engine.node.batch_size = 4;
  config.engine.node.worker_threads = 1;
  config.log_dir = dir;
  config.store_backend = StoreBackend::kSegment;
  config.store_segment_positions = 2;
  auto d = ShardedDeployment::Create(config);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  ShardedLogEngine& e = (*d)->engine();

  auto append = [&](TenantId tenant, const KeyPair& key, uint64_t* seq) {
    std::vector<AppendRequest> batch;
    for (int i = 0; i < 4; ++i) {
      batch.push_back(AppendRequest::Make(key, (*seq)++, ToBytes("k"),
                                          ToBytes("v")));
    }
    auto r = e.Append(tenant, std::move(batch));
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : std::vector<Stage1Response>{};
  };

  uint64_t seq_a = 0, seq_b = 0;
  std::vector<Stage1Response> kept;
  for (int round = 0; round < 3; ++round) {
    append(tenant_a, pub_a, &seq_a);
    auto r = append(tenant_b, pub_b, &seq_b);
    ASSERT_FALSE(r.empty());
    kept.push_back(r.front());
  }
  (*d)->AdvanceBlocks(2);  // Close + mine the forest epoch.

  ASSERT_TRUE(e.RetireTenant(tenant_a).ok());
  auto reclaimed = e.CompactStorage();
  ASSERT_TRUE(reclaimed.ok()) << reclaimed.status().ToString();

  // Every live ack still reads back and passes both proof levels.
  for (const Stage1Response& r : kept) {
    auto read = e.ReadOne(tenant_b, r.index);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    EXPECT_EQ(read->entry, r.entry);
    EXPECT_TRUE(read->Verify(e.address()));
    auto agg = e.ProveAggregation(tenant_b, r.index.log_id);
    ASSERT_TRUE(agg.ok()) << agg.status().ToString();
    PublisherClient client = (*d)->MakePublisher(tenant_b);
    EXPECT_TRUE(client.VerifyAggregation(*read, *agg));
  }
  // Retiring a tenant on the file backend is a typed precondition error.
  std::string file_dir = TempDir("engine_gc_file");
  std::filesystem::create_directories(file_dir);
  ShardedDeploymentConfig file_config = config;
  file_config.log_dir = file_dir;
  file_config.store_backend = StoreBackend::kFile;
  auto file_d = ShardedDeployment::Create(file_config);
  ASSERT_TRUE(file_d.ok());
  EXPECT_EQ((*file_d)->engine().RetireTenant(tenant_a).code(),
            Code::kFailedPrecondition);
}

// ---------------------------------------------------------------------
// FileLogStore error-path audit: typed IoError, no acked-then-lost.

TEST(FileStoreFaultTest, FullDiskAppendFailsTypedAndLosesNothingAcked) {
  std::string path = TempDir("enospc");
  FileLogStore::Options options;
  options.fail_after_bytes = 2000;  // Simulated device capacity.
  auto store = FileLogStore::Open(path, options);
  ASSERT_TRUE(store.ok());

  uint64_t acked = 0;
  Status failure = Status::Ok();
  for (uint64_t i = 0; i < 100; ++i) {
    Status s = (*store)->Append(MakePosition(i, 4));
    if (!s.ok()) {
      failure = s;
      break;
    }
    ++acked;
  }
  // The device filled: the failing append is a typed, retryable
  // IoError (not Corruption, not a silent success).
  ASSERT_FALSE(failure.ok());
  EXPECT_EQ(failure.code(), Code::kIoError);
  ASSERT_GT(acked, 0u);
  // The failed append was rolled back: the store still serves exactly
  // the acked prefix and no torn record follows it.
  EXPECT_EQ((*store)->Size(), acked);
  EXPECT_FALSE((*store)->Get(acked).ok());
  store->reset();

  // An independent replay agrees — nothing acked was lost, nothing
  // beyond the acked prefix survived.
  auto replay = FileLogStore::Open(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ((*replay)->Size(), acked);
  for (uint64_t i = 0; i < acked; ++i) {
    EXPECT_EQ((*replay)->Get(i)->mroot, MakePosition(i, 4).mroot) << i;
  }
}

TEST(FileStoreFaultTest, FsyncOnAppendFaultIsAlsoTyped) {
  std::string path = TempDir("enospc_sync");
  FileLogStore::Options options;
  options.fail_after_bytes = 600;
  options.fsync_on_append = true;
  auto store = FileLogStore::Open(path, options);
  ASSERT_TRUE(store.ok());
  Status failure = Status::Ok();
  for (uint64_t i = 0; i < 50 && failure.ok(); ++i) {
    failure = (*store)->Append(MakePosition(i, 4));
  }
  ASSERT_FALSE(failure.ok());
  EXPECT_EQ(failure.code(), Code::kIoError);
}

}  // namespace
}  // namespace wedge
