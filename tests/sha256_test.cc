#include "crypto/sha256.h"

#include <gtest/gtest.h>

namespace wedge {
namespace {

// FIPS 180-4 test vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HashToHex(Sha256::Digest("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HashToHex(Sha256::Digest("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(HashToHex(Sha256::Digest(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(HashToHex(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly, to cross "
      "block boundaries in the incremental interface. 0123456789";
  Hash256 oneshot = Sha256::Digest(msg);
  for (size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 h;
    h.Update(msg.substr(0, split));
    h.Update(msg.substr(split));
    EXPECT_EQ(h.Finish(), oneshot) << "split=" << split;
  }
}

TEST(Sha256Test, ResetRestoresInitialState) {
  Sha256 h;
  h.Update("garbage");
  h.Reset();
  h.Update("abc");
  EXPECT_EQ(HashToHex(h.Finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha256::Digest("a"), Sha256::Digest("b"));
  EXPECT_NE(Sha256::Digest(""), Sha256::Digest(std::string(1, '\0')));
}

TEST(Sha256Test, HashBytesConversions) {
  Hash256 h = Sha256::Digest("abc");
  Bytes b = HashToBytes(h);
  EXPECT_EQ(b.size(), 32u);
  auto back = HashFromBytes(b);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), h);
  EXPECT_FALSE(HashFromBytes(Bytes{1, 2, 3}).ok());
}

// Length-boundary property sweep: all sizes around the 64-byte block edge.
class Sha256BoundaryTest : public ::testing::TestWithParam<int> {};

TEST_P(Sha256BoundaryTest, PaddingBoundaries) {
  int len = GetParam();
  std::string msg(len, 'x');
  Hash256 a = Sha256::Digest(msg);
  // Same data split byte-by-byte must match.
  Sha256 h;
  for (char c : msg) h.Update(std::string(1, c));
  EXPECT_EQ(h.Finish(), a);
}

INSTANTIATE_TEST_SUITE_P(BlockEdges, Sha256BoundaryTest,
                         ::testing::Values(0, 1, 54, 55, 56, 57, 63, 64, 65,
                                           119, 120, 127, 128, 129));

}  // namespace
}  // namespace wedge
