#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "crypto/sha256_dispatch.h"

namespace wedge {
namespace {

// FIPS 180-4 test vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HashToHex(Sha256::Digest("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HashToHex(Sha256::Digest("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(HashToHex(Sha256::Digest(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(HashToHex(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly, to cross "
      "block boundaries in the incremental interface. 0123456789";
  Hash256 oneshot = Sha256::Digest(msg);
  for (size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 h;
    h.Update(msg.substr(0, split));
    h.Update(msg.substr(split));
    EXPECT_EQ(h.Finish(), oneshot) << "split=" << split;
  }
}

TEST(Sha256Test, ResetRestoresInitialState) {
  Sha256 h;
  h.Update("garbage");
  h.Reset();
  h.Update("abc");
  EXPECT_EQ(HashToHex(h.Finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha256::Digest("a"), Sha256::Digest("b"));
  EXPECT_NE(Sha256::Digest(""), Sha256::Digest(std::string(1, '\0')));
}

TEST(Sha256Test, HashBytesConversions) {
  Hash256 h = Sha256::Digest("abc");
  Bytes b = HashToBytes(h);
  EXPECT_EQ(b.size(), 32u);
  auto back = HashFromBytes(b);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), h);
  EXPECT_FALSE(HashFromBytes(Bytes{1, 2, 3}).ok());
}

// Length-boundary property sweep: all sizes around the 64-byte block edge.
class Sha256BoundaryTest : public ::testing::TestWithParam<int> {};

TEST_P(Sha256BoundaryTest, PaddingBoundaries) {
  int len = GetParam();
  std::string msg(len, 'x');
  Hash256 a = Sha256::Digest(msg);
  // Same data split byte-by-byte must match.
  Sha256 h;
  for (char c : msg) h.Update(std::string(1, c));
  EXPECT_EQ(h.Finish(), a);
}

INSTANTIATE_TEST_SUITE_P(BlockEdges, Sha256BoundaryTest,
                         ::testing::Values(0, 1, 54, 55, 56, 57, 63, 64, 65,
                                           119, 120, 127, 128, 129));

// --- Cross-backend equivalence -----------------------------------------
//
// Every compiled-in backend (scalar 4-lane, AVX2 8-lane, SHA-NI) must be
// byte-identical to the scalar reference on every input. These tests pin
// the dispatcher to each supported backend in turn via the test hook.

/// Pins the dispatcher to `backend` for the test's lifetime.
class BackendGuard {
 public:
  explicit BackendGuard(Sha256Backend backend)
      : previous_(ActiveSha256Backend()),
        active_(SetSha256BackendForTest(backend)) {}
  ~BackendGuard() { SetSha256BackendForTest(previous_); }
  bool active() const { return active_; }

 private:
  Sha256Backend previous_;
  bool active_;
};

class Sha256BackendTest : public ::testing::TestWithParam<Sha256Backend> {};

TEST_P(Sha256BackendTest, NistVectors) {
  BackendGuard guard(GetParam());
  if (!guard.active()) GTEST_SKIP() << "backend not supported on this CPU";
  EXPECT_EQ(HashToHex(Sha256::Digest("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(HashToHex(Sha256::Digest("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(HashToHex(Sha256::Digest(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST_P(Sha256BackendTest, MatchesScalarOnRandomCorpus) {
  // Scalar reference digests for a seeded corpus covering every length
  // 0..256 (all padding boundaries) plus strided lengths up to 4096.
  std::vector<Bytes> corpus;
  Rng rng(0xC0FFEE);
  for (size_t len = 0; len <= 256; ++len) corpus.push_back(rng.NextBytes(len));
  for (size_t len = 257; len <= 4096; len += 97) {
    corpus.push_back(rng.NextBytes(len));
  }
  std::vector<Hash256> reference(corpus.size());
  {
    BackendGuard scalar(Sha256Backend::kScalar);
    ASSERT_TRUE(scalar.active());
    for (size_t i = 0; i < corpus.size(); ++i) {
      reference[i] = Sha256::Digest(corpus[i]);
    }
  }
  BackendGuard guard(GetParam());
  if (!guard.active()) GTEST_SKIP() << "backend not supported on this CPU";
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(Sha256::Digest(corpus[i]), reference[i])
        << "len=" << corpus[i].size() << " on "
        << Sha256BackendName(GetParam());
  }
}

TEST_P(Sha256BackendTest, Sha256ManyMatchesSingles) {
  BackendGuard guard(GetParam());
  if (!guard.active()) GTEST_SKIP() << "backend not supported on this CPU";
  // Mixed lengths exercise the equal-length run batching; the repeated
  // lengths form runs long enough to hit the 4- and 8-lane kernels.
  Rng rng(42);
  std::vector<Bytes> msgs;
  for (size_t len : {0u, 1u, 63u, 64u, 65u, 1088u}) {
    for (int rep = 0; rep < 9; ++rep) msgs.push_back(rng.NextBytes(len));
  }
  std::vector<Hash256> batched(msgs.size());
  Sha256Many(msgs, batched.data());
  for (size_t i = 0; i < msgs.size(); ++i) {
    EXPECT_EQ(batched[i], Sha256::Digest(msgs[i])) << "msg " << i;
  }
}

TEST_P(Sha256BackendTest, Sha256ManySameLenMatchesSingles) {
  BackendGuard guard(GetParam());
  if (!guard.active()) GTEST_SKIP() << "backend not supported on this CPU";
  Rng rng(7);
  // 65 bytes = Merkle interior message; 1088 = the paper's entry size.
  for (size_t len : {1u, 32u, 65u, 1088u}) {
    for (size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 31u, 32u, 33u}) {
      std::vector<Bytes> msgs;
      std::vector<const uint8_t*> ptrs;
      for (size_t i = 0; i < n; ++i) msgs.push_back(rng.NextBytes(len));
      for (const Bytes& m : msgs) ptrs.push_back(m.data());
      std::vector<Hash256> batched(n);
      Sha256ManySameLen(ptrs.data(), len, n, batched.data());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(batched[i], Sha256::Digest(msgs[i]))
            << "len=" << len << " n=" << n << " i=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Backends, Sha256BackendTest,
    ::testing::Values(Sha256Backend::kScalar, Sha256Backend::kAvx2,
                      Sha256Backend::kShaNi),
    [](const ::testing::TestParamInfo<Sha256Backend>& info) {
      return std::string(info.param == Sha256Backend::kShaNi
                             ? "shani"
                             : Sha256BackendName(info.param));
    });

}  // namespace
}  // namespace wedge
