// Loopback tests for the sharded engine behind the real TCP transport:
// RpcServer serving DispatchEngineRpc over a live ShardedDeployment.
// Pins down the multi-tenant wire contract — tenant-scoped routing, typed
// quota rejections that leave the connection usable, aggregation-proof
// fetch, and legacy single-node ops served as tenant 0.
//
// Set WEDGE_SKIP_SOCKET_TESTS=1 to skip at runtime.

#include <cstdlib>
#include <memory>

#include <gtest/gtest.h>

#include "rpc/rpc_server.h"
#include "rpc/tcp_client.h"
#include "shard/shard_rpc.h"
#include "shard/sharded_engine.h"

namespace wedge {
namespace {

bool SocketTestsDisabled() {
  const char* skip = std::getenv("WEDGE_SKIP_SOCKET_TESTS");
  return skip != nullptr && skip[0] == '1';
}

class ShardRpcTest : public ::testing::Test {
 protected:
  void StartServer(uint32_t shards, TenantQuotaConfig quota = {}) {
    ShardedDeploymentConfig config;
    config.engine.num_shards = shards;
    config.engine.node.batch_size = 4;
    config.engine.node.worker_threads = 1;
    config.engine.quota = quota;
    config.engine.forest_stage2 = shards > 1;
    auto d = ShardedDeployment::Create(config);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    deployment_ = std::move(d).value();
    server_key_ = std::make_unique<KeyPair>(
        KeyPair::FromSeed(config.engine_key_seed));
    ShardedLogEngine& engine = deployment_->engine();
    RpcServerConfig server_config;  // Ephemeral port.
    server_ = std::make_unique<RpcServer>(
        RpcServer::Handler([&engine](std::string_view op, const Bytes& body) {
          return DispatchEngineRpc(engine, op, body);
        }),
        *server_key_, server_config, &deployment_->telemetry());
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
  }

  void SetUp() override {
    if (SocketTestsDisabled()) {
      GTEST_SKIP() << "WEDGE_SKIP_SOCKET_TESTS=1";
    }
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Shutdown();
  }

  std::unique_ptr<TcpNodeClient> MakeClient() {
    TcpClientConfig config;
    config.port = server_->port();
    config.pool_size = 1;
    config.rpc_timeout = 5 * kMicrosPerSecond;
    return std::make_unique<TcpNodeClient>(KeyPair::FromSeed(0xC11E),
                                           server_key_->address(), config);
  }

  static std::vector<AppendRequest> MakeBatch(const KeyPair& publisher,
                                              uint64_t& seq, int n) {
    std::vector<AppendRequest> out;
    for (int i = 0; i < n; ++i) {
      out.push_back(AppendRequest::Make(publisher, seq++,
                                        ToBytes("k" + std::to_string(i)),
                                        ToBytes("v")));
    }
    return out;
  }

  std::unique_ptr<ShardedDeployment> deployment_;
  std::unique_ptr<KeyPair> server_key_;
  std::unique_ptr<RpcServer> server_;
};

TEST_F(ShardRpcTest, TenantAppendAndReadRoundTrip) {
  StartServer(/*shards=*/4);
  auto client = MakeClient();
  ASSERT_TRUE(client->Connect().ok());
  KeyPair publisher = KeyPair::FromSeed(0xC11E);
  uint64_t seq = 0;

  for (TenantId tenant : {TenantId{1}, TenantId{2}, TenantId{3}}) {
    auto responses =
        client->AppendForTenant(tenant, MakeBatch(publisher, seq, 4));
    ASSERT_TRUE(responses.ok()) << responses.status().ToString();
    ASSERT_EQ(responses->size(), 4u);
    for (const auto& r : *responses) {
      EXPECT_TRUE(r.Verify(deployment_->engine().address()));
    }
    auto read = client->ReadOneForTenant(tenant, responses->front().index);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    EXPECT_TRUE(read->Verify(deployment_->engine().address()));

    auto batch = client->ReadBatchForTenant(
        tenant, responses->front().index.log_id, {0, 1, 2, 3});
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    EXPECT_EQ(batch->entries.size(), 4u);
  }
}

TEST_F(ShardRpcTest, QuotaRejectionIsTypedAndConnectionStaysUsable) {
  TenantQuotaConfig quota;
  quota.entries_per_second = 1;
  quota.burst_entries = 8;
  StartServer(/*shards=*/2, quota);
  auto client = MakeClient();
  ASSERT_TRUE(client->Connect().ok());
  KeyPair publisher = KeyPair::FromSeed(0xC11E);
  uint64_t seq = 0;

  // The deployment's SimClock is frozen while we talk over TCP, so the
  // bucket cannot refill between calls: the first 8-entry append takes
  // the whole burst, the second must be rejected.
  TenantId tenant = 9;
  auto first = client->AppendForTenant(tenant, MakeBatch(publisher, seq, 8));
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  auto second = client->AppendForTenant(tenant, MakeBatch(publisher, seq, 8));
  ASSERT_FALSE(second.ok());
  // The rejection arrives as the typed quota error, not a transport
  // failure (Status::ToString -> FromWireString round-trip).
  EXPECT_EQ(second.status().code(), Code::kResourceExhausted)
      << second.status().ToString();

  // The connection survives the rejection: reads and further appends for
  // other tenants keep working on the same socket.
  auto read = client->ReadOneForTenant(tenant, first->front().index);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(read->Verify(deployment_->engine().address()));
  auto other = client->AppendForTenant(77, MakeBatch(publisher, seq, 4));
  EXPECT_TRUE(other.ok()) << other.status().ToString();
  EXPECT_EQ(client->reconnects(), 0u);
}

TEST_F(ShardRpcTest, AggregationProofFetchVerifiesLocally) {
  StartServer(/*shards=*/4);
  auto client = MakeClient();
  ASSERT_TRUE(client->Connect().ok());
  KeyPair publisher = KeyPair::FromSeed(0xC11E);
  uint64_t seq = 0;

  TenantId tenant = 5;
  auto responses =
      client->AppendForTenant(tenant, MakeBatch(publisher, seq, 4));
  ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  client->AppendForTenant(6, MakeBatch(publisher, seq, 4));

  // Before any epoch closes the proof does not exist — typed NotFound.
  auto missing = client->FetchAggregationProof(
      tenant, responses->front().index.log_id);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), Code::kNotFound);

  deployment_->AdvanceBlocks(2);  // Close + mine the epoch.

  auto agg = client->FetchAggregationProof(
      tenant, responses->front().index.log_id);
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
  EXPECT_TRUE(agg->Verify(deployment_->engine().address()));
  // Two-level binding against the stage-1 response we hold.
  EXPECT_EQ(agg->log_id, responses->front().proof.log_id);
  EXPECT_EQ(agg->mroot, responses->front().proof.mroot);
}

TEST_F(ShardRpcTest, LegacyOpsServeTenantZero) {
  StartServer(/*shards=*/2);
  auto client = MakeClient();
  ASSERT_TRUE(client->Connect().ok());
  KeyPair publisher = KeyPair::FromSeed(0xC11E);
  uint64_t seq = 0;

  // A pre-sharding client (plain Append/ReadOne) lands on tenant 0's
  // shard; the tenant-scoped route sees exactly the same data.
  auto responses = client->Append(MakeBatch(publisher, seq, 4));
  ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  auto via_legacy = client->ReadOne(responses->front().index);
  ASSERT_TRUE(via_legacy.ok()) << via_legacy.status().ToString();
  auto via_tenant = client->ReadOneForTenant(0, responses->front().index);
  ASSERT_TRUE(via_tenant.ok()) << via_tenant.status().ToString();
  EXPECT_EQ(via_legacy->Serialize(), via_tenant->Serialize());
}

}  // namespace
}  // namespace wedge
