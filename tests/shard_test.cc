#include "shard/sharded_engine.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/bytes.h"
#include "shard/router.h"
#include "shard/token_bucket.h"
#include "storage/log_store.h"

namespace wedge {
namespace {

std::vector<AppendRequest> MakeBatch(const KeyPair& publisher, uint64_t* seq,
                                     int n) {
  std::vector<AppendRequest> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(AppendRequest::Make(publisher, (*seq)++,
                                      ToBytes("k" + std::to_string(i)),
                                      ToBytes("value")));
  }
  return out;
}

// ---------------------------------------------------------------------
// Router

TEST(ShardRouterTest, DeterministicAcrossInstances) {
  // Two independently built rings (e.g. one per process, or one before
  // and one after a restart) must agree on every tenant.
  ShardRouter a(8), b(8);
  for (uint64_t tenant = 0; tenant < 5000; ++tenant) {
    ASSERT_EQ(a.ShardFor(tenant), b.ShardFor(tenant)) << tenant;
  }
}

TEST(ShardRouterTest, CoversAllShardsRoughlyEvenly) {
  ShardRouter router(8);
  std::vector<uint64_t> counts(8, 0);
  for (uint64_t tenant = 0; tenant < 8000; ++tenant) {
    uint32_t s = router.ShardFor(tenant);
    ASSERT_LT(s, 8u);
    ++counts[s];
  }
  for (uint32_t s = 0; s < 8; ++s) {
    // Perfectly even would be 1000; consistent hashing with 64 vnodes
    // lands well within 3x either way.
    EXPECT_GT(counts[s], 300u) << "shard " << s;
    EXPECT_LT(counts[s], 3000u) << "shard " << s;
  }
}

TEST(ShardRouterTest, SingleShardAlwaysZero) {
  ShardRouter router(1);
  for (uint64_t tenant = 0; tenant < 100; ++tenant) {
    EXPECT_EQ(router.ShardFor(tenant), 0u);
  }
}

TEST(ShardRouterTest, MostTenantsStayPutWhenAddingAShard) {
  // The consistent-hashing property: growing 4 -> 5 shards should move
  // roughly 1/5 of tenants, not reshuffle everything like tenant % N.
  ShardRouter before(4), after(5);
  uint64_t moved = 0, total = 10'000;
  for (uint64_t tenant = 0; tenant < total; ++tenant) {
    if (before.ShardFor(tenant) != after.ShardFor(tenant)) ++moved;
  }
  EXPECT_LT(moved, total / 2) << "consistent hashing property lost";
  EXPECT_GT(moved, 0u) << "the new shard got nothing";
}

// ---------------------------------------------------------------------
// Token bucket & admission

TEST(TokenBucketTest, RefillsAtRate) {
  SimClock clock(0);
  TokenBucket bucket(/*rate=*/10, /*burst=*/20, clock.NowMicros());
  EXPECT_TRUE(bucket.TryTake(20, clock.NowMicros()));   // Full burst.
  EXPECT_FALSE(bucket.TryTake(1, clock.NowMicros()));   // Empty.
  clock.AdvanceSeconds(1);
  EXPECT_TRUE(bucket.TryTake(10, clock.NowMicros()));   // 1 s of refill.
  EXPECT_FALSE(bucket.TryTake(1, clock.NowMicros()));
  clock.AdvanceSeconds(100);
  EXPECT_TRUE(bucket.TryTake(20, clock.NowMicros()));   // Capped at burst.
  EXPECT_FALSE(bucket.TryTake(1, clock.NowMicros()));
}

TEST(AdmissionControllerTest, QuotaRejectionsAreTyped) {
  SimClock clock(0);
  MetricsRegistry metrics;
  TenantQuotaConfig quota;
  quota.entries_per_second = 10;
  quota.burst_entries = 16;
  quota.max_inflight_appends = 1;
  quota.max_tenants = 2;
  AdmissionController admission(quota, &clock, &metrics);

  // Rate: the burst admits 16 entries, then the bucket is dry.
  ASSERT_TRUE(admission.AdmitAppend(1, 16).ok());
  admission.EndAppend(1);
  Status rate = admission.AdmitAppend(1, 16);
  EXPECT_EQ(rate.code(), Code::kResourceExhausted);
  EXPECT_EQ(admission.rate_rejections(), 1u);

  // In-flight: tenant 2 holds its one slot until EndAppend.
  ASSERT_TRUE(admission.AdmitAppend(2, 1).ok());
  Status inflight = admission.AdmitAppend(2, 1);
  EXPECT_EQ(inflight.code(), Code::kResourceExhausted);
  EXPECT_EQ(admission.inflight_rejections(), 1u);
  admission.EndAppend(2);
  clock.AdvanceSeconds(1);
  EXPECT_TRUE(admission.AdmitAppend(2, 1).ok());
  admission.EndAppend(2);

  // Tenant cap: a third distinct tenant is refused outright.
  Status tenant = admission.AdmitAppend(3, 1);
  EXPECT_EQ(tenant.code(), Code::kResourceExhausted);
  EXPECT_EQ(admission.tenant_rejections(), 1u);
}

TEST(AdmissionControllerTest, ZeroConfigAdmitsEverything) {
  SimClock clock(0);
  MetricsRegistry metrics;
  AdmissionController admission(TenantQuotaConfig{}, &clock, &metrics);
  for (uint64_t tenant = 0; tenant < 100; ++tenant) {
    EXPECT_TRUE(admission.AdmitAppend(tenant, 1'000'000).ok());
    admission.EndAppend(tenant);
  }
  // With no quota configured there is nothing to enforce, so no amount of
  // distinct ids may accumulate per-tenant state.
  EXPECT_EQ(admission.tracked_tenants(), 0u);
}

TEST(AdmissionControllerTest, RejectedRequestsLeaveNoTenantState) {
  SimClock clock(0);
  MetricsRegistry metrics;
  TenantQuotaConfig quota;
  quota.entries_per_second = 1;
  quota.burst_entries = 4;
  quota.max_tenants = 2;
  AdmissionController admission(quota, &clock, &metrics);
  ASSERT_TRUE(admission.AdmitAppend(1, 1).ok());
  admission.EndAppend(1);
  ASSERT_TRUE(admission.AdmitAppend(2, 1).ok());
  admission.EndAppend(2);
  ASSERT_EQ(admission.tracked_tenants(), 2u);
  // An over-cap tenant is rejected WITHOUT being recorded — otherwise a
  // client cycling fresh ids could pin map entries it was never granted.
  EXPECT_EQ(admission.AdmitAppend(3, 1).code(), Code::kResourceExhausted);
  EXPECT_EQ(admission.tracked_tenants(), 2u);

  // Same for the rate check: a fresh tenant asking for more than the
  // burst can never be admitted, so it must be rejected statelessly.
  TenantQuotaConfig rate_only;
  rate_only.entries_per_second = 1;
  rate_only.burst_entries = 4;
  AdmissionController rate_admission(rate_only, &clock, &metrics);
  EXPECT_EQ(rate_admission.AdmitAppend(9, 100).code(),
            Code::kResourceExhausted);
  EXPECT_EQ(rate_admission.tracked_tenants(), 0u);
}

TEST(AdmissionControllerTest, IdleTenantsAreEvictedForNewOnes) {
  SimClock clock(0);
  MetricsRegistry metrics;
  TenantQuotaConfig quota;
  quota.max_inflight_appends = 4;
  quota.max_tenants = 2;
  quota.idle_tenant_seconds = 10;
  AdmissionController admission(quota, &clock, &metrics);
  ASSERT_TRUE(admission.AdmitAppend(1, 1).ok());
  admission.EndAppend(1);
  ASSERT_TRUE(admission.AdmitAppend(2, 1).ok());  // Stays in flight.
  // Cap full, nobody idle long enough: the third tenant is refused.
  EXPECT_EQ(admission.AdmitAppend(3, 1).code(), Code::kResourceExhausted);
  clock.AdvanceSeconds(11);
  // Tenant 1 idled past the horizon and its slot is reclaimed; tenant 2
  // still has an append in flight and must survive the sweep.
  EXPECT_TRUE(admission.AdmitAppend(3, 1).ok());
  EXPECT_EQ(admission.tracked_tenants(), 2u);
  admission.EndAppend(2);
  admission.EndAppend(3);
}

TEST(AdmissionControllerTest, EndAppendRefundsUnusedEntries) {
  SimClock clock(0);
  MetricsRegistry metrics;
  TenantQuotaConfig quota;
  quota.entries_per_second = 1;
  quota.burst_entries = 4;
  AdmissionController admission(quota, &clock, &metrics);
  ASSERT_TRUE(admission.AdmitAppend(1, 4).ok());
  // The whole call was dropped by the node (e.g. forged signatures sent
  // under this tenant's name): the refund restores the budget in full.
  admission.EndAppend(1, 4);
  EXPECT_TRUE(admission.AdmitAppend(1, 4).ok());
  admission.EndAppend(1);  // This one landed: tokens stay spent.
  EXPECT_EQ(admission.AdmitAppend(1, 1).code(), Code::kResourceExhausted);
}

// ---------------------------------------------------------------------
// Tenant authentication (tenant id <-> publisher key binding)

TEST(TenantAuthTest, MismatchedTenantIsPermissionDenied) {
  ShardedEngineConfig config;
  config.num_shards = 2;
  config.node.batch_size = 4;
  config.node.worker_threads = 1;
  config.authenticate_tenants = true;
  Telemetry telemetry;
  auto engine = ShardedLogEngine::Create(config, KeyPair::FromSeed(1), {},
                                         nullptr, Address{}, &telemetry);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  KeyPair publisher = KeyPair::FromSeed(0xC11E);
  TenantId own = PublisherTenant(publisher.address());
  uint64_t seq = 0;
  EXPECT_TRUE((*engine)->Append(own, MakeBatch(publisher, &seq, 4)).ok());
  // Appending the same (validly signed) requests under any other tenant
  // id is an identity mismatch, refused before any quota is charged.
  auto spoofed = (*engine)->Append(own + 1, MakeBatch(publisher, &seq, 4));
  ASSERT_FALSE(spoofed.ok());
  EXPECT_EQ(spoofed.status().code(), Code::kPermissionDenied);
}

TEST(TenantAuthTest, RequiresSignatureVerification) {
  ShardedEngineConfig config;
  config.authenticate_tenants = true;
  config.node.verify_client_signatures = false;
  Telemetry telemetry;
  auto engine = ShardedLogEngine::Create(config, KeyPair::FromSeed(1), {},
                                         nullptr, Address{}, &telemetry);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), Code::kInvalidArgument);
}

// ---------------------------------------------------------------------
// Engine: routing, quotas, aggregation

class ShardedEngineTest : public ::testing::Test {
 protected:
  void Build(uint32_t shards, TenantQuotaConfig quota = {},
             uint32_t batch_size = 4) {
    ShardedDeploymentConfig config;
    config.engine.num_shards = shards;
    config.engine.node.batch_size = batch_size;
    config.engine.node.worker_threads = 1;
    config.engine.quota = quota;
    config.engine.forest_stage2 = shards > 1;
    auto d = ShardedDeployment::Create(config);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    deployment_ = std::move(d).value();
    publisher_key_ = std::make_unique<KeyPair>(KeyPair::FromSeed(0xC11E));
  }

  // Appends one full batch for `tenant` and returns the responses.
  std::vector<Stage1Response> AppendBatch(TenantId tenant, int n = 4) {
    auto r = deployment_->engine().Append(
        tenant, MakeBatch(*publisher_key_, &seq_, n));
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : std::vector<Stage1Response>{};
  }

  std::unique_ptr<ShardedDeployment> deployment_;
  std::unique_ptr<KeyPair> publisher_key_;
  uint64_t seq_ = 0;
};

TEST_F(ShardedEngineTest, RoutesToTheRingShardAndCounts) {
  Build(4);
  ShardedLogEngine& e = deployment_->engine();
  for (TenantId tenant = 0; tenant < 8; ++tenant) {
    auto responses = AppendBatch(tenant);
    ASSERT_EQ(responses.size(), 4u);
    // The entry is readable through the tenant route...
    auto read = e.ReadOne(tenant, responses.front().index);
    ASSERT_TRUE(read.ok());
    // ...and physically lives on the shard the ring names.
    uint32_t s = e.ShardFor(tenant);
    EXPECT_TRUE(e.shard(s).ReadOne(responses.front().index).ok());
  }
  MetricsSnapshot snap = deployment_->telemetry().metrics.Snapshot();
  uint64_t appends = 0, entries = 0;
  for (uint32_t s = 0; s < 4; ++s) {
    std::string prefix = "wedge.shard." + std::to_string(s) + ".";
    appends += snap.CounterValue(prefix + "appends");
    entries += snap.CounterValue(prefix + "entries");
  }
  EXPECT_EQ(appends, 8u);
  EXPECT_EQ(entries, 32u);
}

TEST_F(ShardedEngineTest, QuotaRejectionIsTypedAndRecovers) {
  TenantQuotaConfig quota;
  quota.entries_per_second = 1;
  quota.burst_entries = 4;
  Build(2, quota);
  AppendBatch(/*tenant=*/7);  // Consumes the whole burst.
  auto rejected = deployment_->engine().Append(
      7, MakeBatch(*publisher_key_, &seq_, 4));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), Code::kResourceExhausted);
  // Another tenant is unaffected; the throttled one recovers with time
  // (the admission clock is the deployment's SimClock).
  AppendBatch(/*tenant=*/8);
  deployment_->clock().AdvanceSeconds(4);
  AppendBatch(/*tenant=*/7);
}

TEST_F(ShardedEngineTest, OneForestTxPerEpochAndLagRecorded) {
  Build(4);
  for (TenantId tenant = 0; tenant < 6; ++tenant) AppendBatch(tenant);
  deployment_->AdvanceBlocks(2);  // Poll + close epoch 0, mine it.
  for (TenantId tenant = 0; tenant < 6; ++tenant) AppendBatch(tenant);
  deployment_->AdvanceBlocks(2);
  // Empty-epoch ticks submit nothing; these blocks only carry the second
  // forest tx to confirmation depth.
  deployment_->AdvanceBlocks(4);

  EpochRootAggregator* agg = deployment_->engine().aggregator();
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->epochs_closed(), 2u);
  EXPECT_EQ(agg->ForestTxIds().size(), 2u);  // Exactly one tx per epoch.
  for (TxId tx : agg->ForestTxIds()) {
    EXPECT_TRUE(deployment_->chain().IsConfirmed(tx));
  }
  MetricsSnapshot snap = deployment_->telemetry().metrics.Snapshot();
  EXPECT_EQ(snap.CounterValue("wedge.engine.epochs_closed"), 2u);
  EXPECT_EQ(snap.CounterValue("wedge.engine.forest_txs"), 2u);
  EXPECT_EQ(snap.CounterValue("wedge.engine.forest_tx_retries"), 0u);
  const HistogramSnapshot* lag =
      snap.FindHistogram("wedge.engine.agg_lag_us");
  ASSERT_NE(lag, nullptr);
  EXPECT_EQ(lag->count, 12u);  // One lag sample per aggregated batch root.
}

TEST_F(ShardedEngineTest, TwoLevelProofVerifiesEndToEnd) {
  Build(4);
  TenantId tenant = 3;
  auto responses = AppendBatch(tenant);
  ASSERT_EQ(responses.size(), 4u);
  deployment_->AdvanceBlocks(2);

  ShardedLogEngine& e = deployment_->engine();
  const Stage1Response& r = responses.front();
  // Level 1: entry -> batch root (the classic stage-1 proof).
  ASSERT_TRUE(r.Verify(e.address()));
  // Level 2: batch root -> forest root, signed by the engine.
  auto agg = e.ProveAggregation(tenant, r.index.log_id);
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
  PublisherClient client = deployment_->MakePublisher(tenant);
  EXPECT_TRUE(client.VerifyAggregation(r, *agg));
  // And the forest root is what the chain recorded for that epoch.
  auto check = client.CheckForestCommit(*agg);
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_EQ(*check, CommitCheck::kBlockchainCommitted);
}

TEST_F(ShardedEngineTest, ProofForUnaggregatedBatchIsNotFound) {
  Build(2);
  TenantId tenant = 1;
  auto responses = AppendBatch(tenant);
  // No epoch closed yet: the proof cannot exist.
  auto agg = deployment_->engine().ProveAggregation(
      tenant, responses.front().index.log_id);
  ASSERT_FALSE(agg.ok());
  EXPECT_EQ(agg.status().code(), Code::kNotFound);
}

TEST_F(ShardedEngineTest, TamperedAggProofIsRejectedNotPunishable) {
  Build(4);
  TenantId tenant = 2;
  auto responses = AppendBatch(tenant);
  // More leaves in the epoch so the forest path is non-empty.
  AppendBatch(tenant + 1);
  AppendBatch(tenant + 2);
  deployment_->AdvanceBlocks(2);
  auto agg = deployment_->engine().ProveAggregation(
      tenant, responses.front().index.log_id);
  ASSERT_TRUE(agg.ok());
  PublisherClient client = deployment_->MakePublisher(tenant);
  ASSERT_TRUE(client.VerifyAggregation(responses.front(), *agg));

  // In-transit tampering (after signing): the signature covers the path,
  // so verification fails — and the evidence is NOT attributable, so the
  // contract refuses to punish for it.
  AggregationProof tampered = *agg;
  ASSERT_FALSE(tampered.forest_path.path.empty());
  tampered.forest_path.path[0].sibling[0] ^= 0xFF;
  EXPECT_FALSE(client.VerifyAggregation(responses.front(), tampered));
  auto receipt = client.TriggerForestPunishment(responses.front(), tampered);
  if (receipt.ok()) {
    EXPECT_FALSE(receipt->success);  // Reverted: unattributable evidence.
  }

  // Same for a tampered binding (mroot).
  AggregationProof rebound = *agg;
  rebound.mroot[0] ^= 0xFF;
  EXPECT_FALSE(client.VerifyAggregation(responses.front(), rebound));
}

TEST_F(ShardedEngineTest, SignedCorruptAggProofIsPunishable) {
  Build(4);
  TenantId tenant = 5;
  auto responses = AppendBatch(tenant);
  // More leaves in the epoch so the forest path is non-empty.
  AppendBatch(tenant + 1);
  AppendBatch(tenant + 2);
  deployment_->AdvanceBlocks(2);

  EpochRootAggregator* agg_src = deployment_->engine().aggregator();
  agg_src->set_byzantine_mode(AggByzantineMode::kCorruptAggProof);
  auto agg = deployment_->engine().ProveAggregation(
      tenant, responses.front().index.log_id);
  ASSERT_TRUE(agg.ok());
  PublisherClient client = deployment_->MakePublisher(tenant);
  // The statement is signed by the engine but internally inconsistent:
  // rejected client-side AND attributable on-chain.
  EXPECT_FALSE(client.VerifyAggregation(responses.front(), *agg));
  auto receipt = client.TriggerForestPunishment(responses.front(), *agg);
  ASSERT_TRUE(receipt.ok()) << receipt.status().ToString();
  EXPECT_TRUE(receipt->success) << "signed-corrupt proof must punish";
}

TEST_F(ShardedEngineTest, EquivocatedForestRootIsPunishable) {
  Build(4);
  EpochRootAggregator* agg_src = deployment_->engine().aggregator();
  agg_src->set_byzantine_mode(AggByzantineMode::kEquivocateBatchRoot);
  TenantId tenant = 4;
  auto responses = AppendBatch(tenant);
  deployment_->AdvanceBlocks(2);  // Epoch closes over LYING batch roots.
  agg_src->set_byzantine_mode(AggByzantineMode::kHonest);

  auto agg = deployment_->engine().ProveAggregation(
      tenant, responses.front().index.log_id);
  ASSERT_TRUE(agg.ok());
  PublisherClient client = deployment_->MakePublisher(tenant);
  // The proof is internally consistent and signed — but its mroot is not
  // what stage 1 signed for this batch: equivocation between the levels.
  EXPECT_TRUE(agg->Verify(deployment_->engine().address()));
  EXPECT_FALSE(client.VerifyAggregation(responses.front(), *agg));
  auto receipt = client.TriggerForestPunishment(responses.front(), *agg);
  ASSERT_TRUE(receipt.ok()) << receipt.status().ToString();
  EXPECT_TRUE(receipt->success) << "equivocation must punish";
}

TEST_F(ShardedEngineTest, CrossShardEvidenceCannotPunishHonestEngine) {
  Build(4);
  ShardedLogEngine& e = deployment_->engine();
  // Two tenants on DIFFERENT shards. Both shards number their logs
  // densely from 0, so each tenant's first batch is "log 0" — the
  // collision a cross-shard evidence splice needs.
  TenantId a = 0, b = 1;
  while (e.ShardFor(b) == e.ShardFor(a)) ++b;
  auto resp_a = AppendBatch(a);
  auto resp_b = AppendBatch(b);
  ASSERT_FALSE(resp_a.empty());
  ASSERT_FALSE(resp_b.empty());
  ASSERT_EQ(resp_a.front().index.log_id, resp_b.front().index.log_id)
      << "the attack needs colliding shard-local log ids";
  ASSERT_NE(resp_a.front().proof.mroot, resp_b.front().proof.mroot);
  // Stage-1 responses carry (and sign) their shard of origin.
  EXPECT_EQ(resp_a.front().proof.shard_id, e.ShardFor(a));
  EXPECT_EQ(resp_b.front().proof.shard_id, e.ShardFor(b));
  deployment_->AdvanceBlocks(2);

  auto agg_b = e.ProveAggregation(b, resp_b.front().index.log_id);
  ASSERT_TRUE(agg_b.ok()) << agg_b.status().ToString();
  PublisherClient client = deployment_->MakePublisher(a);
  // Shard A's honest stage-1 response spliced with shard B's honest
  // aggregation proof for the same log id but a different root: both
  // pieces are genuinely engine-signed, yet together they "show" an
  // mroot mismatch. The stage-1 statement's shard id is what exposes the
  // splice — the client rejects it and the contract must refuse to
  // punish (the stage-1 signature does not verify under shard B's id).
  EXPECT_FALSE(client.VerifyAggregation(resp_a.front(), *agg_b));
  auto receipt = client.TriggerForestPunishment(resp_a.front(), *agg_b);
  ASSERT_TRUE(receipt.ok()) << receipt.status().ToString();
  EXPECT_FALSE(receipt->success)
      << "honest engine's escrow seized by cross-shard evidence splice";
}

TEST_F(ShardedEngineTest, HonestProofDoesNotPunish) {
  Build(4);
  TenantId tenant = 6;
  auto responses = AppendBatch(tenant);
  AppendBatch(tenant + 1);
  deployment_->AdvanceBlocks(2);
  auto agg = deployment_->engine().ProveAggregation(
      tenant, responses.front().index.log_id);
  ASSERT_TRUE(agg.ok());
  PublisherClient client = deployment_->MakePublisher(tenant);
  auto receipt = client.TriggerForestPunishment(responses.front(), *agg);
  if (receipt.ok()) {
    EXPECT_FALSE(receipt->success) << "honest engine must not be punishable";
  }
}

TEST_F(ShardedEngineTest, LostForestTxIsResubmittedAndConfirms) {
  Build(2);
  // The epoch-0 forest submission is acknowledged but never reaches the
  // mempool (dishonest/crashing RPC node).
  deployment_->chain().fault_injector()->Schedule(FaultType::kDropTx, 1);
  auto responses = AppendBatch(/*tenant=*/3);
  ASSERT_FALSE(responses.empty());
  deployment_->AdvanceBlocks(1);  // Poll + close epoch 0; tx dropped.
  // Past the resubmission deadline, plus enough blocks for the retry to
  // mine and reach chain confirmation depth.
  deployment_->AdvanceBlocks(
      static_cast<int>(EpochRootAggregator::kConfirmationDeadlineBlocks) + 6);

  EpochRootAggregator* agg = deployment_->engine().aggregator();
  ASSERT_NE(agg, nullptr);
  // Exactly one resubmission once the deadline passed — and it landed.
  ASSERT_EQ(agg->ForestTxIds().size(), 2u);
  EXPECT_FALSE(deployment_->chain().IsConfirmed(agg->ForestTxIds().front()));
  EXPECT_TRUE(deployment_->chain().IsConfirmed(agg->ForestTxIds().back()));
  MetricsSnapshot snap = deployment_->telemetry().metrics.Snapshot();
  EXPECT_EQ(snap.CounterValue("wedge.engine.forest_tx_retries"), 1u);

  auto proof = deployment_->engine().ProveAggregation(
      3, responses.front().index.log_id);
  ASSERT_TRUE(proof.ok());
  PublisherClient client = deployment_->MakePublisher(3);
  auto check = client.CheckForestCommit(*proof);
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_EQ(*check, CommitCheck::kBlockchainCommitted);
}

TEST_F(ShardedEngineTest, AlreadyRecordedEpochConfirmsWithoutResubmit) {
  Build(2);
  deployment_->chain().fault_injector()->Schedule(FaultType::kDropTx, 1);
  auto responses = AppendBatch(/*tenant=*/3);
  ASSERT_FALSE(responses.empty());
  deployment_->AdvanceBlocks(1);  // Close epoch 0; the submission is lost.

  // The "lost" transaction actually made it through another path (say a
  // second RPC node): the identical root lands under the engine's key.
  // Blindly resubmitting would now revert with epoch != forestTail on
  // every tick, forever.
  auto proof = deployment_->engine().ProveAggregation(
      3, responses.front().index.log_id);
  ASSERT_TRUE(proof.ok()) << proof.status().ToString();
  Transaction tx;
  tx.from = deployment_->engine().address();
  tx.to = deployment_->root_record_address();
  tx.method = "updateForestRoot";
  PutU64(tx.calldata, proof->epoch);
  PutU32(tx.calldata, 1);  // One batch root staged in this epoch.
  Append(tx.calldata, HashToBytes(proof->forest_root));
  ASSERT_TRUE(deployment_->chain().Submit(tx).ok());

  deployment_->AdvanceBlocks(
      static_cast<int>(EpochRootAggregator::kConfirmationDeadlineBlocks) + 2);
  EpochRootAggregator* agg = deployment_->engine().aggregator();
  ASSERT_NE(agg, nullptr);
  // Recovery consulted the chain, found the epoch recorded, and marked
  // it confirmed: no retry transaction, no revert loop.
  EXPECT_EQ(agg->ForestTxIds().size(), 1u);
  MetricsSnapshot snap = deployment_->telemetry().metrics.Snapshot();
  EXPECT_EQ(snap.CounterValue("wedge.engine.forest_tx_retries"), 0u);
  PublisherClient client = deployment_->MakePublisher(3);
  auto check = client.CheckForestCommit(*proof);
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_EQ(*check, CommitCheck::kBlockchainCommitted);
}

TEST_F(ShardedEngineTest, RoutingIsStableAcrossRestartWithFileStores) {
  std::string dir = ::testing::TempDir() + "/wedge_shard_restart";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  ShardedDeploymentConfig config;
  config.engine.num_shards = 4;
  config.engine.node.batch_size = 4;
  config.engine.node.worker_threads = 1;
  config.log_dir = dir;

  std::vector<std::pair<TenantId, EntryIndex>> written;
  KeyPair publisher = KeyPair::FromSeed(0xC11E);
  uint64_t seq = 0;
  {
    auto d = ShardedDeployment::Create(config);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    for (TenantId tenant = 10; tenant < 18; ++tenant) {
      auto r = (*d)->engine().Append(tenant, MakeBatch(publisher, &seq, 4));
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      written.emplace_back(tenant, r->front().index);
    }
  }
  // "Restart": a fresh process image over the same shard files. The ring
  // is rebuilt from (num_shards, vnodes) alone, so every tenant's entry
  // must be found exactly where the new router looks.
  {
    auto d = ShardedDeployment::Create(config);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    for (const auto& [tenant, index] : written) {
      auto read = (*d)->engine().ReadOne(tenant, index);
      ASSERT_TRUE(read.ok())
          << "tenant " << tenant << ": " << read.status().ToString();
      EXPECT_TRUE(read->Verify((*d)->engine().address()));
    }
  }
  std::filesystem::remove_all(dir);
}

TEST_F(ShardedEngineTest, DegenerateSingleShardMatchesBareNode) {
  // shards=1 + classic stage 2 must be byte-identical to a bare
  // OffchainNode: same responses, same roots, same signatures (RFC 6979
  // determinism makes this exact).
  OffchainNodeConfig node_config;
  node_config.batch_size = 4;
  node_config.worker_threads = 1;
  node_config.auto_stage2 = false;
  KeyPair engine_key = KeyPair::FromSeed(0xED6E);
  KeyPair publisher = KeyPair::FromSeed(0xC11E);

  uint64_t seq_bare = 0;
  Telemetry bare_telemetry;
  OffchainNode bare(node_config, engine_key,
                    std::make_unique<MemoryLogStore>(), nullptr, Address{},
                    &bare_telemetry);
  auto bare_responses = bare.Append(MakeBatch(publisher, &seq_bare, 4));
  ASSERT_TRUE(bare_responses.ok());

  ShardedEngineConfig engine_config;
  engine_config.num_shards = 1;
  engine_config.node = node_config;
  engine_config.forest_stage2 = false;
  Telemetry engine_telemetry;
  auto engine = ShardedLogEngine::Create(engine_config, engine_key, {},
                                         nullptr, Address{},
                                         &engine_telemetry);
  ASSERT_TRUE(engine.ok());
  uint64_t seq_engine = 0;
  auto engine_responses =
      (*engine)->Append(0, MakeBatch(publisher, &seq_engine, 4));
  ASSERT_TRUE(engine_responses.ok());

  ASSERT_EQ(bare_responses->size(), engine_responses->size());
  for (size_t i = 0; i < bare_responses->size(); ++i) {
    EXPECT_EQ((*bare_responses)[i].Serialize(),
              (*engine_responses)[i].Serialize())
        << "response " << i << " diverged";
  }
}

TEST_F(ShardedEngineTest, ForestStage2OffNeedsSingleShard) {
  ShardedEngineConfig config;
  config.num_shards = 2;
  config.forest_stage2 = false;
  Telemetry telemetry;
  auto engine = ShardedLogEngine::Create(config, KeyPair::FromSeed(1), {},
                                         nullptr, Address{}, &telemetry);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), Code::kInvalidArgument);
}

// ---------------------------------------------------------------------
// OffchainNodeStats registry audit (the PR-4 cache counters were missing
// from the snapshot)

TEST(OffchainNodeStatsTest, SnapshotsEveryRegisteredNodeCounter) {
  OffchainNodeConfig config;
  config.batch_size = 4;
  config.worker_threads = 1;
  config.auto_stage2 = false;
  Telemetry telemetry;
  OffchainNode node(config, KeyPair::FromSeed(0xED6E),
                    std::make_unique<MemoryLogStore>(), nullptr, Address{},
                    &telemetry);
  KeyPair publisher = KeyPair::FromSeed(0xC11E);
  uint64_t seq = 0;
  auto responses = node.Append(MakeBatch(publisher, &seq, 4));
  ASSERT_TRUE(responses.ok());
  // Two reads of the same sealed position: at least one tree rebuild
  // (miss) and, with a warm cache, at least one hit.
  ASSERT_TRUE(node.ReadOne(responses->front().index).ok());
  ASSERT_TRUE(node.ReadOne(responses->front().index).ok());

  OffchainNodeStats stats = node.stats();
  MetricsSnapshot snap = telemetry.metrics.Snapshot();
  // The struct is DERIVED from the registry: every wedge.node.* counter
  // the node registers must round-trip through stats() exactly.
  EXPECT_EQ(stats.entries_ingested,
            snap.CounterValue("wedge.node.entries_ingested"));
  EXPECT_EQ(stats.batches_created,
            snap.CounterValue("wedge.node.batches_created"));
  EXPECT_EQ(stats.invalid_signatures_rejected,
            snap.CounterValue("wedge.node.invalid_signatures_rejected"));
  EXPECT_EQ(stats.reads_served, snap.CounterValue("wedge.node.reads_served"));
  EXPECT_EQ(stats.tree_cache_hits,
            snap.CounterValue("wedge.node.tree_cache_hits"));
  EXPECT_EQ(stats.tree_cache_misses,
            snap.CounterValue("wedge.node.tree_cache_misses"));
  EXPECT_GT(stats.tree_cache_hits + stats.tree_cache_misses, 0u)
      << "reads must touch the tree cache";
}

}  // namespace
}  // namespace wedge
