#include "net/sim_network.h"

#include <gtest/gtest.h>

namespace wedge {
namespace {

TEST(SimLinkTest, DelayIncludesTransmission) {
  NetworkConfig config;
  config.base_latency = 1000;
  config.jitter = 0;
  config.bandwidth_bytes_per_sec = 1'000'000;  // 1 MB/s.
  SimLink link(config, 1);
  EXPECT_EQ(link.DelayFor(0), 1000);
  // 1 MB at 1 MB/s = 1 second.
  EXPECT_EQ(link.DelayFor(1'000'000), 1000 + kMicrosPerSecond);
}

TEST(SimLinkTest, JitterStaysBounded) {
  NetworkConfig config;
  config.base_latency = 1000;
  config.jitter = 100;
  SimLink link(config, 2);
  for (int i = 0; i < 200; ++i) {
    Micros d = link.DelayFor(0);
    EXPECT_GE(d, 900);
    EXPECT_LE(d, 1100);
  }
}

TEST(SimLinkTest, DropProbability) {
  NetworkConfig config;
  config.drop_probability = 0.0;
  SimLink reliable(config, 3);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(reliable.ShouldDrop());

  config.drop_probability = 1.0;
  SimLink lossy(config, 4);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(lossy.ShouldDrop());

  config.drop_probability = 0.5;
  SimLink coin(config, 5);
  int drops = 0;
  for (int i = 0; i < 1000; ++i) drops += coin.ShouldDrop() ? 1 : 0;
  EXPECT_GT(drops, 400);
  EXPECT_LT(drops, 600);
}

TEST(MessageBusTest, DeliversAfterDelay) {
  SimClock clock(0);
  NetworkConfig config;
  config.base_latency = 500;
  config.jitter = 0;
  MessageBus bus(&clock, config, 1);

  std::vector<std::string> received;
  bus.RegisterEndpoint("server", [&](const std::string& from, const Bytes& b) {
    received.push_back(from + ":" + ToString(b));
  });

  bus.Send("client", "server", ToBytes("hello"));
  EXPECT_EQ(bus.InFlight(), 1u);
  EXPECT_EQ(bus.DeliverDue(), 0);  // Too early.
  clock.Advance(600);
  EXPECT_EQ(bus.DeliverDue(), 1);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], "client:hello");
  EXPECT_EQ(bus.InFlight(), 0u);
}

TEST(MessageBusTest, StepAdvancesToNextDelivery) {
  SimClock clock(0);
  NetworkConfig config;
  config.base_latency = 1000;
  config.jitter = 0;
  MessageBus bus(&clock, config, 1);
  int count = 0;
  bus.RegisterEndpoint("sink",
                       [&](const std::string&, const Bytes&) { ++count; });
  bus.Send("a", "sink", ToBytes("1"));
  clock.Advance(10);
  bus.Send("a", "sink", ToBytes("2"));
  EXPECT_TRUE(bus.Step());
  EXPECT_GE(count, 1);
  while (bus.Step()) {
  }
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(bus.Step());  // Nothing left.
}

TEST(MessageBusTest, UnknownEndpointDropsSilently) {
  SimClock clock(0);
  MessageBus bus(&clock, NetworkConfig{}, 1);
  bus.Send("a", "nobody", ToBytes("x"));
  clock.Advance(10'000'000);
  EXPECT_EQ(bus.DeliverDue(), 0);
  EXPECT_EQ(bus.InFlight(), 0u);
}

TEST(MessageBusTest, OmissionAttackDropsMessages) {
  SimClock clock(0);
  NetworkConfig config;
  config.drop_probability = 1.0;  // Total omission.
  MessageBus bus(&clock, config, 1);
  int count = 0;
  bus.RegisterEndpoint("sink",
                       [&](const std::string&, const Bytes&) { ++count; });
  Result<Micros> sent = bus.Send("a", "sink", ToBytes("gone"));
  EXPECT_FALSE(sent.ok());
  EXPECT_EQ(sent.status().code(), Code::kUnavailable);
  clock.Advance(10'000'000);
  bus.DeliverDue();
  EXPECT_EQ(count, 0);
}

TEST(SignedEnvelopeTest, CreateAndVerify) {
  KeyPair key = KeyPair::FromSeed(42);
  SignedEnvelope env = SignedEnvelope::Create(key, ToBytes("payload"));
  EXPECT_EQ(env.sender, key.address());
  EXPECT_TRUE(env.Verify());
}

TEST(SignedEnvelopeTest, TamperedPayloadFails) {
  KeyPair key = KeyPair::FromSeed(42);
  SignedEnvelope env = SignedEnvelope::Create(key, ToBytes("payload"));
  env.payload[0] ^= 0xFF;
  EXPECT_FALSE(env.Verify());
}

TEST(SignedEnvelopeTest, SpoofedSenderFails) {
  KeyPair key = KeyPair::FromSeed(42);
  SignedEnvelope env = SignedEnvelope::Create(key, ToBytes("payload"));
  env.sender = KeyPair::FromSeed(43).address();
  EXPECT_FALSE(env.Verify());
}

TEST(SignedEnvelopeTest, SerializationRoundTrip) {
  KeyPair key = KeyPair::FromSeed(7);
  SignedEnvelope env = SignedEnvelope::Create(key, ToBytes("wire me"));
  auto back = SignedEnvelope::Deserialize(env.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->sender, env.sender);
  EXPECT_EQ(back->payload, env.payload);
  EXPECT_TRUE(back->Verify());
  EXPECT_FALSE(SignedEnvelope::Deserialize(Bytes(10, 0)).ok());
}

}  // namespace
}  // namespace wedge
