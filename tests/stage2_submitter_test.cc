#include "core/stage2_submitter.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/wedgeblock.h"
#include "storage/log_store.h"

namespace wedge {
namespace {

std::vector<std::pair<Bytes, Bytes>> Workload(int n) {
  Rng rng(n);
  std::vector<std::pair<Bytes, Bytes>> kvs;
  for (int i = 0; i < n; ++i) {
    kvs.emplace_back(ToBytes("k" + std::to_string(i)), rng.NextBytes(32));
  }
  return kvs;
}

std::unique_ptr<Deployment> Make(uint32_t batch_size) {
  DeploymentConfig config;
  config.node.batch_size = batch_size;
  config.node.worker_threads = 2;
  auto d = Deployment::Create(config);
  EXPECT_TRUE(d.ok());
  return std::move(d).value();
}

uint64_t OnChainTail(Blockchain& chain, const Address& root_record) {
  auto out = chain.Call(root_record, "tailIdx", {});
  EXPECT_TRUE(out.ok());
  ByteReader reader(out.value());
  auto tail = reader.ReadU64();
  EXPECT_TRUE(tail.ok());
  return tail.value();
}

/// Acceptance: the fault injector drops the first two stage-2
/// transactions; the pipeline retries until every batch root is
/// confirmed on-chain — zero digests lost.
TEST(Stage2SubmitterTest, DroppedStage2TxsAreRetriedUntilAllRootsConfirm) {
  auto d = Make(/*batch_size=*/4);
  d->chain().fault_injector()->Schedule(FaultType::kDropTx, 2);

  auto& pub = d->publisher();
  auto responses = pub.Publish(pub.MakeRequests(Workload(8)));
  ASSERT_TRUE(responses.ok());  // 2 batches -> 2 (dropped) stage-2 txs.
  EXPECT_EQ(d->node().UncommittedDigests(), 2u);
  EXPECT_EQ(d->chain().fault_injector()->stats().txs_dropped, 2u);

  // Past the confirmation deadline + backoff + confirmation depth.
  d->AdvanceBlocks(20);

  EXPECT_EQ(d->node().UncommittedDigests(), 0u);
  EXPECT_EQ(OnChainTail(d->chain(), d->root_record_address()), 2u);
  for (const Stage1Response& r : responses.value()) {
    auto check = pub.CheckBlockchainCommit(r);
    ASSERT_TRUE(check.ok());
    EXPECT_EQ(check.value(), CommitCheck::kBlockchainCommitted);
  }
  Stage2SubmitterStats stats = d->node().stage2_submitter()->stats();
  EXPECT_EQ(stats.txs_timed_out, 2u);
  EXPECT_GE(stats.txs_retried, 1u);
  EXPECT_EQ(stats.digests_confirmed, 2u);
}

TEST(Stage2SubmitterTest, RevertedStage2TxIsRetried) {
  auto d = Make(/*batch_size=*/4);
  d->chain().fault_injector()->Schedule(FaultType::kRevertTx, 1);

  auto& pub = d->publisher();
  auto responses = pub.Publish(pub.MakeRequests(Workload(4)));
  ASSERT_TRUE(responses.ok());

  d->AdvanceBlocks(16);

  EXPECT_EQ(d->node().UncommittedDigests(), 0u);
  EXPECT_EQ(OnChainTail(d->chain(), d->root_record_address()), 1u);
  Stage2SubmitterStats stats = d->node().stage2_submitter()->stats();
  EXPECT_EQ(stats.txs_reverted, 1u);
  EXPECT_GE(stats.txs_retried, 1u);
}

TEST(Stage2SubmitterTest, EvictedStage2TxIsRetried) {
  auto d = Make(/*batch_size=*/4);
  // Evict the stage-2 tx from the mempool, and delay the next blocks so
  // it cannot mine before its eviction deadline.
  d->chain().fault_injector()->Schedule(FaultType::kEvictTx, 1);
  d->chain().fault_injector()->Schedule(FaultType::kDelayBlock, 2);

  auto& pub = d->publisher();
  auto responses = pub.Publish(pub.MakeRequests(Workload(4)));
  ASSERT_TRUE(responses.ok());

  d->AdvanceBlocks(24);

  EXPECT_EQ(d->node().UncommittedDigests(), 0u);
  EXPECT_EQ(d->chain().fault_injector()->stats().txs_evicted, 1u);
  EXPECT_EQ(OnChainTail(d->chain(), d->root_record_address()), 1u);
}

TEST(Stage2SubmitterTest, SteadyDropProbabilityNeverLosesDigests) {
  DeploymentConfig config;
  config.node.batch_size = 4;
  config.node.worker_threads = 2;
  config.chain.faults.drop_probability = 0.3;
  config.chain.faults.seed = 7;
  auto made = Deployment::Create(config);
  ASSERT_TRUE(made.ok());
  auto d = std::move(made).value();

  auto& pub = d->publisher();
  for (int round = 0; round < 4; ++round) {
    auto responses = pub.Publish(pub.MakeRequests(Workload(8)));
    ASSERT_TRUE(responses.ok());
    d->AdvanceBlocks(12);
  }
  d->AdvanceBlocks(30);
  EXPECT_EQ(d->node().UncommittedDigests(), 0u);
  EXPECT_EQ(OnChainTail(d->chain(), d->root_record_address()), 8u);
}

/// The structured per-attempt log must mirror the scripted fault
/// sequence: a dropped transaction surfaces as a "timeout" retry with a
/// bumped gas bid, a reverted one as a "revert" retry.
TEST(Stage2SubmitterTest, AttemptLogRecordsCausesMatchingScriptedFaults) {
  {
    auto d = Make(/*batch_size=*/4);
    d->chain().fault_injector()->Schedule(FaultType::kDropTx, 1);
    auto& pub = d->publisher();
    ASSERT_TRUE(pub.Publish(pub.MakeRequests(Workload(4))).ok());
    d->AdvanceBlocks(20);
    ASSERT_EQ(d->node().UncommittedDigests(), 0u);

    auto attempts = d->node().stage2_submitter()->attempts();
    ASSERT_EQ(attempts.size(), 2u);
    EXPECT_EQ(attempts[0].attempt, 1);
    EXPECT_EQ(attempts[0].cause, "initial");
    EXPECT_EQ(attempts[0].first_log_id, 0u);
    EXPECT_EQ(attempts[0].count, 1u);
    EXPECT_EQ(attempts[1].attempt, 2);
    EXPECT_EQ(attempts[1].cause, "timeout");  // Drop surfaces as timeout.
    // The retry outbids the initial submission (gas bump).
    EXPECT_TRUE(attempts[1].gas_bid > attempts[0].gas_bid);
    EXPECT_GT(attempts[1].block, attempts[0].block);
  }
  {
    auto d = Make(/*batch_size=*/4);
    d->chain().fault_injector()->Schedule(FaultType::kRevertTx, 1);
    auto& pub = d->publisher();
    ASSERT_TRUE(pub.Publish(pub.MakeRequests(Workload(4))).ok());
    d->AdvanceBlocks(16);
    ASSERT_EQ(d->node().UncommittedDigests(), 0u);

    auto attempts = d->node().stage2_submitter()->attempts();
    ASSERT_EQ(attempts.size(), 2u);
    EXPECT_EQ(attempts[0].cause, "initial");
    EXPECT_EQ(attempts[1].cause, "revert");  // Receipt seen, reverted.
    EXPECT_TRUE(attempts[1].gas_bid > attempts[0].gas_bid);
  }
}

/// The attempt trail also lands in the shared tracer: tx_submitted spans
/// carry attempt/cause notes and the chain still ends confirmed.
TEST(Stage2SubmitterTest, TraceShowsRetriedSubmissionEndingConfirmed) {
  auto d = Make(/*batch_size=*/4);
  d->chain().fault_injector()->Schedule(FaultType::kDropTx, 1);
  auto& pub = d->publisher();
  ASSERT_TRUE(pub.Publish(pub.MakeRequests(Workload(4))).ok());
  d->AdvanceBlocks(20);
  ASSERT_EQ(d->node().UncommittedDigests(), 0u);

  Tracer& tracer = d->telemetry().tracer;
  EXPECT_TRUE(tracer.ChainEndsConfirmed(0));
  int submits = 0, retries = 0;
  for (const TraceEvent& ev : tracer.EventsFor(0)) {
    if (ev.stage == trace_stage::kTxSubmitted) {
      ++submits;
      EXPECT_NE(ev.note.find("attempt="), std::string::npos);
      EXPECT_NE(ev.note.find("cause="), std::string::npos);
    }
    if (ev.stage == trace_stage::kTxRetry) ++retries;
  }
  EXPECT_EQ(submits, 2);  // Initial + one retry.
  EXPECT_EQ(retries, 1);
}

TEST(Stage2SubmitterTest, EnqueueRejectsGaps) {
  SimClock clock(0);
  Blockchain chain(ChainConfig{}, &clock);
  Stage2Submitter submitter(Stage2SubmitterConfig{}, &chain,
                            KeyPair::FromSeed(1).address(),
                            KeyPair::FromSeed(2).address());
  EXPECT_TRUE(submitter.Enqueue(3, Hash256{}).ok());
  EXPECT_TRUE(submitter.Enqueue(4, Hash256{}).ok());
  Status gap = submitter.Enqueue(6, Hash256{});
  EXPECT_EQ(gap.code(), Code::kInvalidArgument);
  EXPECT_EQ(submitter.UncommittedDigests(), 2u);
}

/// Acceptance: kill the node after sealing batches whose digests never
/// reached the chain; reopen the file-backed store, Recover(), and the
/// pipeline commits the pre-crash roots.
TEST(Stage2SubmitterTest, RecoverRecommitsRootsSealedBeforeCrash) {
  std::string path = ::testing::TempDir() + "/wedge_recover_test.log";
  std::remove(path.c_str());

  SimClock clock(0);
  Blockchain chain(ChainConfig{}, &clock);
  KeyPair node_key = KeyPair::FromSeed(0xED6E);
  KeyPair client_key = KeyPair::FromSeed(0xC11E);
  chain.Fund(node_key.address(), EthToWei(1000));
  auto root_record = chain.Deploy(
      node_key.address(),
      std::make_unique<RootRecordContract>(node_key.address()));
  ASSERT_TRUE(root_record.ok());

  OffchainNodeConfig node_config;
  node_config.batch_size = 2;
  node_config.worker_threads = 2;
  node_config.auto_stage2 = false;

  auto append_batches = [&](OffchainNode& node, uint64_t first_seq, int n) {
    std::vector<AppendRequest> requests;
    for (int i = 0; i < n; ++i) {
      requests.push_back(AppendRequest::Make(
          client_key, first_seq + i, ToBytes("k" + std::to_string(i)),
          ToBytes("v")));
    }
    auto responses = node.Append(requests);
    ASSERT_TRUE(responses.ok());
  };
  auto pump = [&](OffchainNode& node, int blocks) {
    for (int i = 0; i < blocks; ++i) {
      clock.AdvanceSeconds(chain.config().block_interval_seconds);
      chain.PumpUntilNow();
      node.Stage2Tick();
    }
  };

  {
    auto store = FileLogStore::Open(path);
    ASSERT_TRUE(store.ok());
    OffchainNode node(node_config, node_key, std::move(store).value(), &chain,
                      root_record.value());
    // Seal positions 0,1 and commit them on-chain.
    append_batches(node, 0, 4);  // batch_size 2 -> positions 0,1.
    ASSERT_EQ(node.PendingDigests(), 2u);
    auto tx = node.CommitPendingDigests();
    ASSERT_TRUE(tx.ok());
    pump(node, chain.config().confirmations + 2);
    EXPECT_EQ(node.UncommittedDigests(), 0u);

    // Seal positions 2,3; their digests never reach the chain — the node
    // dies before CommitPendingDigests. (The destructor closes the log
    // file; torn-tail truncation is covered by the storage tests.)
    append_batches(node, 100, 4);
    EXPECT_EQ(node.PendingDigests(), 2u);
  }
  EXPECT_EQ(OnChainTail(chain, root_record.value()), 2u);

  // Restart: reopen the store, reconcile against the chain, recommit.
  auto store = FileLogStore::Open(path);
  ASSERT_TRUE(store.ok());
  ASSERT_EQ(store.value()->Size(), 4u);
  std::vector<Hash256> expected_roots;
  for (uint64_t id = 2; id < 4; ++id) {
    expected_roots.push_back(store.value()->Get(id).value().mroot);
  }
  OffchainNode node(node_config, node_key, std::move(store).value(), &chain,
                    root_record.value());
  auto recovered = node.Recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value(), 2u);
  EXPECT_EQ(node.PendingDigests(), 2u);
  auto tx = node.CommitPendingDigests();
  ASSERT_TRUE(tx.ok());
  pump(node, chain.config().confirmations + 2);
  EXPECT_EQ(node.UncommittedDigests(), 0u);
  EXPECT_EQ(OnChainTail(chain, root_record.value()), 4u);
  for (uint64_t id = 2; id < 4; ++id) {
    Bytes query;
    PutU64(query, id);
    auto out = chain.Call(root_record.value(), "getRootAtIndex", query);
    ASSERT_TRUE(out.ok());
    ByteReader reader(out.value());
    auto found = reader.ReadRaw(1);
    auto root_raw = reader.ReadRaw(32);
    ASSERT_TRUE(found.ok() && root_raw.ok());
    EXPECT_EQ(found.value()[0], 1u);
    EXPECT_EQ(root_raw.value(), HashToBytes(expected_roots[id - 2]));
  }

  std::remove(path.c_str());
}

}  // namespace
}  // namespace wedge
