#include "core/stage2_watcher.h"

#include <gtest/gtest.h>

#include "core/wedgeblock.h"

namespace wedge {
namespace {

std::vector<std::pair<Bytes, Bytes>> Workload(int n) {
  std::vector<std::pair<Bytes, Bytes>> kvs;
  for (int i = 0; i < n; ++i) {
    kvs.emplace_back(ToBytes("k" + std::to_string(i)), ToBytes("v"));
  }
  return kvs;
}

std::unique_ptr<Deployment> Make(ByzantineMode mode) {
  DeploymentConfig config;
  config.node.batch_size = 4;
  config.node.byzantine_mode = mode;
  auto d = Deployment::Create(config);
  EXPECT_TRUE(d.ok());
  return std::move(d).value();
}

TEST(Stage2WatcherTest, ResolvesHonestResponsesOnEvents) {
  auto d = Make(ByzantineMode::kHonest);
  auto& pub = d->publisher();
  Stage2Watcher watcher(&d->chain(), d->root_record_address(), &pub);

  auto responses = pub.Publish(pub.MakeRequests(Workload(8)));
  ASSERT_TRUE(responses.ok());
  watcher.TrackAll(responses.value());
  EXPECT_EQ(watcher.PendingCount(), 8u);

  // Nothing resolves before the digests are mined.
  auto early = watcher.Poll();
  ASSERT_TRUE(early.ok());
  EXPECT_TRUE(early->empty());
  EXPECT_EQ(watcher.ObservedTail(), 0u);

  d->AdvanceBlocks(2);  // RecordsUpdated events fire during mining.
  EXPECT_EQ(watcher.ObservedTail(), 2u);
  auto resolved = watcher.Poll();
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->size(), 8u);
  for (const auto& outcome : *resolved) {
    EXPECT_EQ(outcome.check, CommitCheck::kBlockchainCommitted);
    EXPECT_FALSE(outcome.punishment_triggered);
  }
  EXPECT_EQ(watcher.PendingCount(), 0u);
  EXPECT_EQ(watcher.ResolvedCount(), 8u);
}

TEST(Stage2WatcherTest, AutoPunishesEquivocation) {
  auto d = Make(ByzantineMode::kEquivocateRoot);
  auto& pub = d->publisher();
  Stage2Watcher watcher(&d->chain(), d->root_record_address(), &pub,
                        /*auto_punish=*/true);

  auto responses = pub.Publish(pub.MakeRequests(Workload(4)));
  ASSERT_TRUE(responses.ok());
  watcher.TrackAll(responses.value());
  d->AdvanceBlocks(2);

  auto resolved = watcher.Poll();
  ASSERT_TRUE(resolved.ok());
  ASSERT_EQ(resolved->size(), 4u);
  int punished = 0;
  for (const auto& outcome : *resolved) {
    EXPECT_EQ(outcome.check, CommitCheck::kMismatch);
    if (outcome.punishment_triggered && outcome.punishment_receipt.success) {
      ++punished;
    }
  }
  // All-or-nothing: exactly one punishment drains the escrow, the other
  // attempts revert (still reported as triggered, but unsuccessful).
  EXPECT_EQ(punished, 1);
  EXPECT_EQ(d->chain().BalanceOf(d->punishment_address()), Wei());
}

TEST(Stage2WatcherTest, ManualModeOnlyReports) {
  auto d = Make(ByzantineMode::kEquivocateRoot);
  auto& pub = d->publisher();
  Stage2Watcher watcher(&d->chain(), d->root_record_address(), &pub,
                        /*auto_punish=*/false);
  auto responses = pub.Publish(pub.MakeRequests(Workload(4)));
  ASSERT_TRUE(responses.ok());
  watcher.Track(responses->front());
  d->AdvanceBlocks(2);
  auto resolved = watcher.Poll();
  ASSERT_TRUE(resolved.ok());
  ASSERT_EQ(resolved->size(), 1u);
  EXPECT_EQ((*resolved)[0].check, CommitCheck::kMismatch);
  EXPECT_FALSE((*resolved)[0].punishment_triggered);
  // Escrow untouched: the application decides.
  EXPECT_EQ(d->chain().BalanceOf(d->punishment_address()), EthToWei(32));
}

TEST(Stage2WatcherTest, PartialCoverageResolvesIncrementally) {
  auto d = Make(ByzantineMode::kHonest);
  auto& pub = d->publisher();
  Stage2Watcher watcher(&d->chain(), d->root_record_address(), &pub);

  // First batch commits on-chain...
  auto first = pub.Publish(pub.MakeRequests(Workload(4)));
  ASSERT_TRUE(first.ok());
  watcher.TrackAll(first.value());
  d->AdvanceBlocks(2);
  ASSERT_EQ(watcher.Poll()->size(), 4u);

  // ...then the node stops committing (omission): the second batch stays
  // pending — the watcher never falsely resolves it.
  d->node().set_byzantine_mode(ByzantineMode::kOmitStage2);
  auto second = pub.Publish(pub.MakeRequests(Workload(4)));
  ASSERT_TRUE(second.ok());
  watcher.TrackAll(second.value());
  d->AdvanceBlocks(4);
  EXPECT_TRUE(watcher.Poll()->empty());
  EXPECT_EQ(watcher.PendingCount(), 4u);
  // (Timeout-based punishment for omission remains the publisher's
  // FinalizeOrPunish path; the watcher handles the event-driven cases.)
}

TEST(Stage2WatcherTest, LivenessDeadlineFlagsSuspectedOmission) {
  auto d = Make(ByzantineMode::kOmitStage2);
  auto& pub = d->publisher();
  Stage2Watcher watcher(&d->chain(), d->root_record_address(), &pub,
                        /*auto_punish=*/true,
                        /*liveness_deadline_blocks=*/5);

  auto responses = pub.Publish(pub.MakeRequests(Workload(4)));
  ASSERT_TRUE(responses.ok());
  watcher.TrackAll(responses.value());

  // Within the horizon the responses stay pending.
  d->AdvanceBlocks(3);
  EXPECT_TRUE(watcher.Poll()->empty());
  EXPECT_EQ(watcher.PendingCount(), 4u);

  // Past the horizon every tracked response resolves as a suspected
  // omission — the trigger for the §4.7 omission-claim path.
  d->AdvanceBlocks(3);
  auto resolved = watcher.Poll();
  ASSERT_TRUE(resolved.ok());
  ASSERT_EQ(resolved->size(), 4u);
  for (const auto& outcome : *resolved) {
    EXPECT_EQ(outcome.check, CommitCheck::kOmissionSuspected);
    EXPECT_FALSE(outcome.punishment_triggered);
  }
  EXPECT_EQ(watcher.PendingCount(), 0u);
}

}  // namespace
}  // namespace wedge
