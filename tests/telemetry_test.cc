#include <algorithm>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"

namespace wedge {
namespace {

// --- Histogram bucket math.

TEST(HistogramBuckets, SmallValuesAreExact) {
  for (int64_t v = 0; v <= 3; ++v) {
    uint32_t b = Histogram::BucketIndex(v);
    EXPECT_EQ(Histogram::BucketLowerBound(b), v);
    EXPECT_EQ(Histogram::BucketUpperBound(b), v);
  }
}

TEST(HistogramBuckets, BoundsContainTheirValues) {
  // Probe around every power of two plus assorted odd values.
  std::vector<int64_t> probes = {4, 5, 6, 7, 8, 9, 15, 16, 17, 100, 1000,
                                 4095, 4096, 4097, 1 << 20, (1LL << 40) + 123};
  for (int64_t shift = 2; shift < 62; ++shift) {
    probes.push_back((1LL << shift) - 1);
    probes.push_back(1LL << shift);
    probes.push_back((1LL << shift) + 1);
  }
  for (int64_t v : probes) {
    uint32_t b = Histogram::BucketIndex(v);
    ASSERT_LT(b, Histogram::kNumBuckets) << "value " << v;
    EXPECT_LE(Histogram::BucketLowerBound(b), v) << "value " << v;
    EXPECT_GE(Histogram::BucketUpperBound(b), v) << "value " << v;
  }
}

TEST(HistogramBuckets, BucketsAreContiguousAndOrdered) {
  for (uint32_t b = 1; b < Histogram::kNumBuckets; ++b) {
    EXPECT_EQ(Histogram::BucketLowerBound(b),
              Histogram::BucketUpperBound(b - 1) + 1)
        << "bucket " << b;
  }
}

TEST(HistogramBuckets, WidthBoundsQuantileError) {
  // Each bucket spans at most 25% of its lower edge — the property the
  // quantile error bound rests on.
  for (uint32_t b = 4; b < Histogram::kNumBuckets; ++b) {
    int64_t lo = Histogram::BucketLowerBound(b);
    int64_t hi = Histogram::BucketUpperBound(b);
    EXPECT_LE(hi - lo, lo / 4) << "bucket " << b;
  }
}

// --- Recording and quantiles.

TEST(Histogram, ExactStatsForSmallValues) {
  Histogram h;
  for (int64_t v : {0, 1, 1, 2, 3, 3, 3}) h.Record(v);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 7u);
  EXPECT_EQ(s.sum, 13);
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, 3);
  EXPECT_EQ(s.ValueAtQuantile(0.0), 0);
  EXPECT_EQ(s.ValueAtQuantile(1.0), 3);
}

TEST(Histogram, NegativeValuesClampToZero) {
  Histogram h;
  h.Record(-100);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 0);
}

TEST(Histogram, QuantileWithinDocumentedErrorBound) {
  Histogram h;
  std::vector<int64_t> values;
  // A spread covering several octaves, deterministic.
  for (int64_t i = 1; i <= 10000; ++i) values.push_back(i * 7 + (i % 13));
  for (int64_t v : values) h.Record(v);
  std::sort(values.begin(), values.end());
  HistogramSnapshot s = h.Snapshot();
  ASSERT_EQ(s.count, values.size());
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    int64_t truth = values[static_cast<size_t>(q * (values.size() - 1))];
    int64_t est = s.ValueAtQuantile(q);
    EXPECT_GE(est, truth) << "q=" << q;
    EXPECT_LE(est, truth + truth / 4 + 1) << "q=" << q;
  }
  EXPECT_EQ(s.ValueAtQuantile(1.0), values.back());  // Clamped to max.
}

TEST(Histogram, MultiThreadShardMergeIsExact) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int64_t i = 0; i < kPerThread; ++i) {
        h.Record(t * kPerThread + i);
      }
    });
  }
  for (auto& th : threads) th.join();
  HistogramSnapshot s = h.Snapshot();
  constexpr int64_t kTotal = kThreads * kPerThread;
  EXPECT_EQ(s.count, static_cast<uint64_t>(kTotal));
  EXPECT_EQ(s.sum, kTotal * (kTotal - 1) / 2);  // Sum of 0..kTotal-1.
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, kTotal - 1);
  uint64_t bucket_total = 0;
  for (const auto& [bucket, count] : s.buckets) bucket_total += count;
  EXPECT_EQ(bucket_total, s.count);
}

// --- Registry.

TEST(MetricsRegistry, CountersGaugesAndStablePointers) {
  SimClock clock;
  MetricsRegistry reg(&clock);
  Counter* c = reg.GetCounter("wedge.test.ops");
  c->Add(3);
  EXPECT_EQ(reg.GetCounter("wedge.test.ops"), c);  // Same pointer.
  reg.GetGauge("wedge.test.depth")->Set(-7);
  reg.GetHistogram("wedge.test.lat_us")->Record(42);

  clock.Advance(1234);
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.at, 1234);
  EXPECT_EQ(snap.CounterValue("wedge.test.ops"), 3u);
  EXPECT_EQ(snap.CounterValue("wedge.test.absent"), 0u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, -7);
  ASSERT_NE(snap.FindHistogram("wedge.test.lat_us"), nullptr);
  EXPECT_EQ(snap.FindHistogram("wedge.test.absent"), nullptr);
}

TEST(MetricsRegistry, ConcurrentGetAndBump) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kIters; ++i) {
        reg.GetCounter("wedge.test.shared")->Add(1);
        reg.GetHistogram("wedge.test.h")->Record(i);
      }
    });
  }
  for (auto& th : threads) th.join();
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("wedge.test.shared"),
            static_cast<uint64_t>(kThreads * kIters));
  EXPECT_EQ(snap.FindHistogram("wedge.test.h")->count,
            static_cast<uint64_t>(kThreads * kIters));
}

// --- Exporters.

TEST(Exporters, IdenticalInputsRenderIdentically) {
  auto fill = [](MetricsRegistry& reg) {
    reg.GetCounter("wedge.a.ops")->Add(5);
    reg.GetGauge("wedge.b.depth")->Set(9);
    for (int64_t v : {10, 200, 3000}) {
      reg.GetHistogram("wedge.c.lat_us")->Record(v);
    }
  };
  MetricsRegistry r1, r2;
  fill(r1);
  fill(r2);
  EXPECT_EQ(MetricsToJsonLines(r1.Snapshot()),
            MetricsToJsonLines(r2.Snapshot()));
  EXPECT_EQ(MetricsToPrometheus(r1.Snapshot()),
            MetricsToPrometheus(r2.Snapshot()));
  // Sanity on content.
  std::string json = MetricsToJsonLines(r1.Snapshot());
  EXPECT_NE(json.find("\"wedge.a.ops\", \"value\": 5"), std::string::npos);
  std::string prom = MetricsToPrometheus(r1.Snapshot());
  EXPECT_NE(prom.find("wedge_a_ops 5"), std::string::npos);
  EXPECT_NE(prom.find("wedge_c_lat_us_count 3"), std::string::npos);
}

// --- Tracer.

TEST(Tracer, LifecycleQueriesAndDeterministicDump) {
  auto run = [] {
    SimClock clock;
    Tracer tracer(&clock);
    tracer.Event(0, trace_stage::kIngest, 50);
    clock.Advance(10);
    tracer.Event(0, trace_stage::kSeal, 50);
    tracer.Event(1, trace_stage::kIngest, 50);
    clock.Advance(10);
    tracer.Event(0, trace_stage::kTxSubmitted, 50, "attempt=1 cause=initial");
    clock.Advance(10);
    tracer.Event(0, trace_stage::kConfirmed, 50);
    return tracer.ToJsonLines();
  };

  SimClock clock;
  Tracer tracer(&clock);
  tracer.Event(7, trace_stage::kIngest);
  clock.Advance(5);
  tracer.Event(7, trace_stage::kConfirmed);
  tracer.Event(8, trace_stage::kIngest);

  auto events = tracer.EventsFor(7);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].stage, trace_stage::kIngest);
  EXPECT_EQ(events[0].at, 0);
  EXPECT_EQ(events[1].stage, trace_stage::kConfirmed);
  EXPECT_EQ(events[1].at, 5);
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_TRUE(tracer.ChainEndsConfirmed(7));
  EXPECT_FALSE(tracer.ChainEndsConfirmed(8));
  EXPECT_FALSE(tracer.ChainEndsConfirmed(99));  // No events at all.

  // Two identical runs on fresh SimClocks produce byte-identical dumps.
  EXPECT_EQ(run(), run());
}

TEST(Tracer, RingDropsOldestAtCapacity) {
  Tracer tracer(nullptr, 4);
  for (uint64_t i = 0; i < 10; ++i) {
    tracer.Event(i, trace_stage::kIngest);
  }
  EXPECT_EQ(tracer.EventCount(), 4u);
  EXPECT_EQ(tracer.DroppedCount(), 6u);
  auto events = tracer.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest gone, newest retained, seq monotone across the drops so a
  // consumer can detect the gap.
  EXPECT_EQ(events.front().log_id, 6u);
  EXPECT_EQ(events.front().seq, 6u);
  EXPECT_EQ(events.back().log_id, 9u);
  EXPECT_EQ(events.back().seq, 9u);
}

TEST(Tracer, DropCounterBumpsPerDroppedEvent) {
  MetricsRegistry reg;
  Counter* dropped = reg.GetCounter("wedge.trace.dropped");
  Tracer tracer(nullptr, 2);
  tracer.SetDropCounter(dropped);
  for (uint64_t i = 0; i < 5; ++i) tracer.Event(i, trace_stage::kSeal);
  EXPECT_EQ(reg.Snapshot().CounterValue("wedge.trace.dropped"), 3u);
  EXPECT_EQ(tracer.DroppedCount(), 3u);
}

TEST(Tracer, ShrinkingCapacityEvictsOldestImmediately) {
  Tracer tracer;
  for (uint64_t i = 0; i < 8; ++i) tracer.Event(i, trace_stage::kIngest);
  tracer.SetCapacity(3);
  EXPECT_EQ(tracer.Capacity(), 3u);
  EXPECT_EQ(tracer.EventCount(), 3u);
  EXPECT_EQ(tracer.DroppedCount(), 5u);
  auto events = tracer.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events.front().log_id, 5u);
}

TEST(Tracer, RecentReturnsTailInSeqOrder) {
  Tracer tracer;
  for (uint64_t i = 0; i < 6; ++i) tracer.Event(i, trace_stage::kIngest);
  auto tail = tracer.Recent(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].log_id, 4u);
  EXPECT_EQ(tail[1].log_id, 5u);
  EXPECT_EQ(tracer.Recent(100).size(), 6u);  // Clamped to what's held.
}

TEST(Tracer, JsonShape) {
  Tracer tracer;  // Null clock: timestamps 0.
  tracer.Event(3, trace_stage::kTxRetry, 0, "cause=timeout attempt=2");
  std::string json = tracer.ToJsonLines();
  EXPECT_EQ(json,
            "{\"kind\": \"span\", \"seq\": 0, \"t_us\": 0, \"log_id\": 3, "
            "\"stage\": \"tx_retry\", \"note\": \"cause=timeout "
            "attempt=2\"}\n");
}

}  // namespace
}  // namespace wedge
