#include "storage/tiered_store.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "merkle/merkle_tree.h"

namespace wedge {
namespace {

LogPosition MakePosition(uint64_t id, size_t entries = 4) {
  Rng rng(id + 5);
  LogPosition pos;
  pos.log_id = id;
  for (size_t i = 0; i < entries; ++i) {
    pos.data_list.push_back(rng.NextBytes(32));
  }
  pos.mroot = MerkleTree::Build(pos.data_list)->Root();
  return pos;
}

class TieredStoreTest : public ::testing::Test {
 protected:
  TieredStoreTest() : archive_(8, 3, 11), store_(3, &archive_) {}

  DecentralizedArchive archive_;
  TieredLogStore store_;
};

TEST_F(TieredStoreTest, HotTierBoundedColdTierComplete) {
  for (uint64_t id = 0; id < 10; ++id) {
    ASSERT_TRUE(store_.Append(MakePosition(id)).ok());
  }
  EXPECT_EQ(store_.Size(), 10u);
  EXPECT_EQ(store_.HotCount(), 3u);  // Only the newest three stay hot.

  // Hot read: no archive fetch.
  uint64_t cold_before = store_.ColdReads();
  auto hot = store_.Get(9);
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(store_.ColdReads(), cold_before);

  // Cold read: fetched (and verified) from the archive.
  auto cold = store_.Get(0);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->data_list, MakePosition(0).data_list);
  EXPECT_EQ(store_.ColdReads(), cold_before + 1);
}

TEST_F(TieredStoreTest, EnforcesConsecutiveAppends) {
  EXPECT_FALSE(store_.Append(MakePosition(3)).ok());
  ASSERT_TRUE(store_.Append(MakePosition(0)).ok());
  EXPECT_FALSE(store_.Append(MakePosition(0)).ok());
}

TEST_F(TieredStoreTest, GetEntryAcrossTiers) {
  for (uint64_t id = 0; id < 6; ++id) {
    ASSERT_TRUE(store_.Append(MakePosition(id)).ok());
  }
  auto cold_entry = store_.GetEntry(EntryIndex{0, 2});
  ASSERT_TRUE(cold_entry.ok());
  EXPECT_EQ(cold_entry.value(), MakePosition(0).data_list[2]);
  auto hot_entry = store_.GetEntry(EntryIndex{5, 1});
  ASSERT_TRUE(hot_entry.ok());
  EXPECT_FALSE(store_.GetEntry(EntryIndex{0, 9}).ok());
  EXPECT_FALSE(store_.GetEntry(EntryIndex{17, 0}).ok());
}

TEST_F(TieredStoreTest, ScanSpansBothTiers) {
  for (uint64_t id = 0; id < 8; ++id) {
    ASSERT_TRUE(store_.Append(MakePosition(id)).ok());
  }
  std::vector<uint64_t> seen;
  ASSERT_TRUE(store_
                  .Scan(0, 7,
                        [&](const LogPosition& pos) {
                          seen.push_back(pos.log_id);
                          return true;
                        })
                  .ok());
  EXPECT_EQ(seen.size(), 8u);
  for (uint64_t i = 0; i < 8; ++i) EXPECT_EQ(seen[i], i);
}

TEST_F(TieredStoreTest, ColdReadSurvivesPeerDeaths) {
  for (uint64_t id = 0; id < 5; ++id) {
    ASSERT_TRUE(store_.Append(MakePosition(id)).ok());
  }
  // Kill peers until position 0 has one live copy.
  for (int peer = 0; peer < archive_.num_peers() && archive_.LiveCopies(0) > 1;
       ++peer) {
    archive_.KillPeer(peer);
  }
  EXPECT_TRUE(store_.Get(0).ok());
  // Kill everything: cold data is unavailable, hot data still serves.
  for (int peer = 0; peer < archive_.num_peers(); ++peer) {
    archive_.KillPeer(peer);
  }
  EXPECT_FALSE(store_.Get(0).ok());
  EXPECT_TRUE(store_.Get(4).ok());  // Still hot.
}

TEST_F(TieredStoreTest, ByzantinePeersCannotServeTamperedColdData) {
  for (uint64_t id = 0; id < 5; ++id) {
    ASSERT_TRUE(store_.Append(MakePosition(id)).ok());
  }
  // Corrupt every archived copy of position 1.
  for (int peer = 0; peer < archive_.num_peers(); ++peer) {
    (void)archive_.CorruptCopy(peer, 1);
  }
  auto fetched = store_.Get(1);
  EXPECT_FALSE(fetched.ok());  // Refuses garbage rather than serving it.
  EXPECT_EQ(fetched.status().code(), Code::kUnavailable);
}

TEST(TieredStoreCapacityTest, CapacityOneKeepsOnlyNewest) {
  DecentralizedArchive archive(6, 2, 3);
  TieredLogStore store(1, &archive);
  for (uint64_t id = 0; id < 4; ++id) {
    ASSERT_TRUE(store.Append(MakePosition(id)).ok());
  }
  EXPECT_EQ(store.HotCount(), 1u);
  EXPECT_TRUE(store.Get(3).ok());
  EXPECT_TRUE(store.Get(1).ok());
  EXPECT_GE(store.ColdReads(), 1u);
}

}  // namespace
}  // namespace wedge
