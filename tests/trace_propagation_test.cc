// Cross-process trace propagation tests: the optional trace-context
// extension on the RPC request wire format (back-compatibility pinned
// byte-for-byte), the thread-local ScopedTrace plumbing, and the full
// loopback round trip — a client-side trace id must reappear on the
// serving process's tracer spans, and per-op latency histograms must
// materialize on both sides of the wire.
//
// Set WEDGE_SKIP_SOCKET_TESTS=1 to skip the socket-bound fixtures.

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/wedgeblock.h"
#include "net/wire.h"
#include "rpc/rpc_server.h"
#include "rpc/tcp_client.h"
#include "telemetry/tracer.h"

namespace wedge {
namespace {

bool SocketTestsDisabled() {
  const char* skip = std::getenv("WEDGE_SKIP_SOCKET_TESTS");
  return skip != nullptr && skip[0] == '1';
}

RpcRequest MakeRequest() {
  RpcRequest req;
  req.rpc_id = 7;
  req.op = "append";
  req.body = ToBytes("payload");
  return req;
}

// The exact encoding every pre-extension peer emits: no trailing bytes
// after the body.
Bytes LegacyEncoding(const RpcRequest& req) {
  Bytes out;
  PutU64(out, req.rpc_id);
  PutString(out, req.op);
  PutBytes(out, req.body);
  return out;
}

TEST(TraceWireTest, UntracedEncodingIsByteIdenticalToLegacy) {
  RpcRequest req = MakeRequest();
  ASSERT_EQ(req.trace_id, 0u);
  EXPECT_EQ(req.Encode(), LegacyEncoding(req));
}

TEST(TraceWireTest, LegacyFrameDecodesUntraced) {
  RpcRequest req = MakeRequest();
  auto decoded = RpcRequest::Decode(LegacyEncoding(req));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->rpc_id, 7u);
  EXPECT_EQ(decoded->op, "append");
  EXPECT_EQ(decoded->trace_id, 0u);
  EXPECT_TRUE(decoded->origin.empty());
}

TEST(TraceWireTest, TraceExtensionRoundTrips) {
  RpcRequest req = MakeRequest();
  req.trace_id = 0xDEADBEEF01ULL;
  req.origin = "loadgen";
  auto decoded = RpcRequest::Decode(req.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->trace_id, 0xDEADBEEF01ULL);
  EXPECT_EQ(decoded->origin, "loadgen");
  EXPECT_EQ(decoded->op, "append");
  EXPECT_EQ(decoded->body, ToBytes("payload"));
}

TEST(TraceWireTest, RejectsMalformedExtensions) {
  RpcRequest req = MakeRequest();

  // Unknown extension tag: still trailing garbage.
  Bytes bad_tag = LegacyEncoding(req);
  PutU32(bad_tag, 0x12345678);
  PutU64(bad_tag, 1);
  PutString(bad_tag, "x");
  EXPECT_FALSE(RpcRequest::Decode(bad_tag).ok());

  // A trace extension must carry a nonzero id (zero means untraced and
  // must be encoded by omission, keeping untraced frames legacy-exact).
  Bytes zero_id = LegacyEncoding(req);
  PutU32(zero_id, kTraceExtMagic);
  PutU64(zero_id, 0);
  PutString(zero_id, "x");
  EXPECT_FALSE(RpcRequest::Decode(zero_id).ok());

  // Oversized origin.
  Bytes big_origin = LegacyEncoding(req);
  PutU32(big_origin, kTraceExtMagic);
  PutU64(big_origin, 1);
  PutString(big_origin, std::string(kMaxTraceOriginBytes + 1, 'o'));
  EXPECT_FALSE(RpcRequest::Decode(big_origin).ok());

  // Bytes after a well-formed extension.
  RpcRequest traced = MakeRequest();
  traced.trace_id = 5;
  Bytes trailing = traced.Encode();
  trailing.push_back(0);
  EXPECT_FALSE(RpcRequest::Decode(trailing).ok());
}

TEST(ScopedTraceTest, NestsAndRestores) {
  EXPECT_EQ(CurrentTraceId(), 0u);
  {
    ScopedTrace outer(10, "outer");
    EXPECT_EQ(CurrentTraceId(), 10u);
    EXPECT_EQ(CurrentTraceOrigin(), "outer");
    {
      ScopedTrace inner(20, "inner");
      EXPECT_EQ(CurrentTraceId(), 20u);
      EXPECT_EQ(CurrentTraceOrigin(), "inner");
    }
    EXPECT_EQ(CurrentTraceId(), 10u);
    EXPECT_EQ(CurrentTraceOrigin(), "outer");
  }
  EXPECT_EQ(CurrentTraceId(), 0u);
  EXPECT_TRUE(CurrentTraceOrigin().empty());
}

class TracePropagationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (SocketTestsDisabled()) {
      GTEST_SKIP() << "WEDGE_SKIP_SOCKET_TESTS=1";
    }
    DeploymentConfig config;
    config.node.batch_size = 4;
    config.node.worker_threads = 1;
    auto d = Deployment::Create(config);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    deployment_ = std::move(d).value();
    server_key_ = std::make_unique<KeyPair>(
        KeyPair::FromSeed(config.offchain_key_seed));
    RpcServerConfig server_config;  // Ephemeral port.
    server_ = std::make_unique<RpcServer>(&deployment_->node(), *server_key_,
                                          server_config,
                                          &deployment_->telemetry());
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Shutdown();
  }

  static std::vector<AppendRequest> MakeBatch(const KeyPair& publisher,
                                              uint64_t& seq, int n) {
    std::vector<AppendRequest> out;
    for (int i = 0; i < n; ++i) {
      out.push_back(AppendRequest::Make(publisher, seq++,
                                        ToBytes("k" + std::to_string(i)),
                                        ToBytes("v")));
    }
    return out;
  }

  std::unique_ptr<Deployment> deployment_;
  std::unique_ptr<KeyPair> server_key_;
  std::unique_ptr<RpcServer> server_;
};

TEST_F(TracePropagationTest, TraceIdCrossesTheWireIntoServerSpans) {
  Telemetry client_telemetry{RealClock::Global()};
  TcpClientConfig config;
  config.port = server_->port();
  config.telemetry = &client_telemetry;
  TcpNodeClient client(KeyPair::FromSeed(0xC11E), server_key_->address(),
                       config);
  ASSERT_TRUE(client.Connect().ok());
  KeyPair publisher = KeyPair::FromSeed(0xC11E);
  uint64_t seq = 0;

  constexpr uint64_t kTraceId = 0xAB54A98CEB1F0AD2ULL;
  {
    ScopedTrace scope(kTraceId, "trace-test");
    auto responses = client.Append(MakeBatch(publisher, seq, 4));
    ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  }
  // A second, untraced call: its server spans must NOT carry the id.
  auto untraced = client.Append(MakeBatch(publisher, seq, 4));
  ASSERT_TRUE(untraced.ok());
  client.Close();

  bool saw_rpc_recv = false, saw_traced_ingest = false;
  for (const TraceEvent& ev : deployment_->telemetry().tracer.Events()) {
    if (ev.stage == trace_stage::kRpcRecv && ev.trace_id == kTraceId) {
      saw_rpc_recv = true;
      EXPECT_EQ(ev.origin, "trace-test");
    }
    if (ev.stage == trace_stage::kIngest && ev.trace_id == kTraceId) {
      saw_traced_ingest = true;
    }
    // No id leaked onto spans of the untraced request.
    if (ev.trace_id != 0) {
      EXPECT_EQ(ev.trace_id, kTraceId);
    }
  }
  EXPECT_TRUE(saw_rpc_recv);
  EXPECT_TRUE(saw_traced_ingest);

  // Per-op latency histograms materialized on both ends of the wire.
  MetricsSnapshot server_snap = deployment_->telemetry().metrics.Snapshot();
  const HistogramSnapshot* server_op =
      server_snap.FindHistogram("wedge.rpc.op_us{op=append}");
  ASSERT_NE(server_op, nullptr);
  EXPECT_EQ(server_op->count, 2u);
  MetricsSnapshot client_snap = client_telemetry.metrics.Snapshot();
  const HistogramSnapshot* client_op =
      client_snap.FindHistogram("wedge.client.rpc_us{op=append}");
  ASSERT_NE(client_op, nullptr);
  EXPECT_EQ(client_op->count, 2u);
}

TEST_F(TracePropagationTest, ClientWithoutTelemetryStaysQuiet) {
  TcpClientConfig config;
  config.port = server_->port();  // No telemetry wired in.
  TcpNodeClient client(KeyPair::FromSeed(0xC11E), server_key_->address(),
                       config);
  ASSERT_TRUE(client.Connect().ok());
  KeyPair publisher = KeyPair::FromSeed(0xC11E);
  uint64_t seq = 0;
  ASSERT_TRUE(client.Append(MakeBatch(publisher, seq, 4)).ok());
  client.Close();
  // The server still serves and records; the client just has nowhere to
  // record — this must not crash or allocate a registry behind our back.
  MetricsSnapshot snap = deployment_->telemetry().metrics.Snapshot();
  EXPECT_GE(snap.CounterValue("wedge.rpc.requests"), 1u);
}

}  // namespace
}  // namespace wedge
