#include "crypto/u256.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "crypto/secp256k1.h"

namespace wedge {
namespace {

U256 RandomU256(Rng& rng) {
  return U256(rng.Next(), rng.Next(), rng.Next(), rng.Next());
}

TEST(U256Test, ZeroAndOne) {
  EXPECT_TRUE(U256::Zero().IsZero());
  EXPECT_FALSE(U256::One().IsZero());
  EXPECT_EQ(U256::One().ToU64(), 1u);
  EXPECT_TRUE(U256::One().FitsU64());
  EXPECT_FALSE(U256::Max().FitsU64());
}

TEST(U256Test, HexRoundTrip) {
  auto v = U256::FromHex("0xdeadbeef");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToU64(), 0xdeadbeefULL);
  EXPECT_EQ(v->ToHex(),
            "00000000000000000000000000000000000000000000000000000000deadbeef");

  auto big = U256::FromHex(
      "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big.value(), secp256k1::FieldPrime());
}

TEST(U256Test, FromHexRejectsBadInput) {
  EXPECT_FALSE(U256::FromHex("").ok());
  EXPECT_FALSE(U256::FromHex(std::string(65, 'f')).ok());
  EXPECT_FALSE(U256::FromHex("0xzz").ok());
}

TEST(U256Test, BytesRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    U256 v = RandomU256(rng);
    auto back = U256::FromBytesBE(v.ToBytesBE());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), v);
  }
}

TEST(U256Test, FromBytesBEPadded) {
  auto v = U256::FromBytesBEPadded(Bytes{0x01, 0x02});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToU64(), 0x0102u);
  EXPECT_FALSE(U256::FromBytesBEPadded(Bytes(33, 0)).ok());
}

TEST(U256Test, Comparisons) {
  U256 a(5), b(6);
  EXPECT_LT(a, b);
  EXPECT_LE(a, a);
  EXPECT_GT(b, a);
  U256 high(0, 0, 0, 1);  // 2^192
  EXPECT_GT(high, U256(~0ULL));
}

TEST(U256Test, AdditionCarries) {
  U256 max64(~0ULL);
  U256 sum = max64 + U256::One();
  EXPECT_EQ(sum, U256(0, 1, 0, 0));

  U256 out;
  EXPECT_TRUE(U256::AddWithCarry(U256::Max(), U256::One(), &out));
  EXPECT_TRUE(out.IsZero());
}

TEST(U256Test, SubtractionBorrows) {
  U256 out;
  EXPECT_FALSE(U256::SubWithBorrow(U256(10), U256(3), &out));
  EXPECT_EQ(out.ToU64(), 7u);
  EXPECT_TRUE(U256::SubWithBorrow(U256(3), U256(10), &out));
  // Wrapped: 2^256 - 7.
  EXPECT_EQ(out + U256(7), U256::Zero());
}

TEST(U256Test, MulWideLowHigh) {
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1.
  U512 sq = U256::MulWide(U256(~0ULL), U256(~0ULL));
  EXPECT_EQ(sq.limb[0], 1u);
  EXPECT_EQ(sq.limb[1], ~0ULL - 1);  // 0xFFFF...FFFE
  EXPECT_EQ(sq.limb[2], 0u);

  U512 big = U256::MulWide(U256::Max(), U256::Max());
  EXPECT_EQ(big.Hi(), U256::Max() - U256::One());
  EXPECT_EQ(big.Lo(), U256::One());
}

TEST(U256Test, ShiftIdentities) {
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    U256 v = RandomU256(rng);
    EXPECT_EQ(v.Shl(0), v);
    EXPECT_EQ(v.Shr(0), v);
    for (int s : {1, 7, 64, 65, 130, 255}) {
      // Shifting right then left masks the low bits off.
      U256 rl = v.Shr(s).Shl(s);
      // rl must equal v with the low s bits cleared.
      U256 mask_cleared = v;
      for (int b = 0; b < s; ++b) {
        mask_cleared.limb[b / 64] &= ~(1ULL << (b % 64));
      }
      EXPECT_EQ(rl, mask_cleared) << "shift " << s;
    }
  }
}

TEST(U256Test, BitAndBitLength) {
  U256 v = U256::One().Shl(200);
  EXPECT_TRUE(v.Bit(200));
  EXPECT_FALSE(v.Bit(199));
  EXPECT_EQ(v.BitLength(), 201);
  EXPECT_EQ(U256::Zero().BitLength(), 0);
  EXPECT_EQ(U256::Max().BitLength(), 256);
}

TEST(U256Test, DivModBasics) {
  U256 q, r;
  ASSERT_TRUE(U256(100).DivMod(U256(7), &q, &r).ok());
  EXPECT_EQ(q.ToU64(), 14u);
  EXPECT_EQ(r.ToU64(), 2u);
  EXPECT_FALSE(U256(1).DivMod(U256::Zero(), &q, &r).ok());
}

TEST(U256Test, DivModReconstructs) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    U256 a = RandomU256(rng);
    U256 d = U256(rng.Next() | 1);  // Non-zero.
    U256 q, r;
    ASSERT_TRUE(a.DivMod(d, &q, &r).ok());
    EXPECT_LT(r, d);
    EXPECT_EQ(q * d + r, a);  // Wrapping mul is exact here since q*d <= a.
  }
}

TEST(U256Test, DecimalFormatting) {
  EXPECT_EQ(U256::Zero().ToDecimal(), "0");
  EXPECT_EQ(U256(12345).ToDecimal(), "12345");
  // 2^64 = 18446744073709551616.
  EXPECT_EQ(U256(0, 1, 0, 0).ToDecimal(), "18446744073709551616");
}

TEST(U256Test, ModularArithmeticIdentities) {
  const U256& p = secp256k1::FieldPrime();
  Rng rng(4);
  for (int i = 0; i < 30; ++i) {
    U256 a = U256::Mod(RandomU256(rng), p);
    U256 b = U256::Mod(RandomU256(rng), p);
    // Commutativity.
    EXPECT_EQ(AddMod(a, b, p), AddMod(b, a, p));
    EXPECT_EQ(MulMod(a, b, p), MulMod(b, a, p));
    // a - b + b == a.
    EXPECT_EQ(AddMod(SubMod(a, b, p), b, p), a);
    // Inverse.
    if (!a.IsZero()) {
      EXPECT_EQ(MulMod(a, InvMod(a, p), p), U256::One());
    }
  }
}

TEST(U256Test, PowModSmallCases) {
  U256 m(1000000007ULL);
  EXPECT_EQ(PowMod(U256(2), U256(10), m).ToU64(), 1024u);
  EXPECT_EQ(PowMod(U256(5), U256::Zero(), m).ToU64(), 1u);
  // Fermat: a^(m-1) = 1 mod prime m.
  EXPECT_EQ(PowMod(U256(123456), m - U256(1), m).ToU64(), 1u);
}

// ReduceWide (fast Solinas path) must agree with the generic MulMod for
// both secp256k1 moduli.
class ReduceWideTest : public ::testing::TestWithParam<int> {};

TEST_P(ReduceWideTest, MatchesGenericReduction) {
  Rng rng(100 + GetParam());
  const U256& p = secp256k1::FieldPrime();
  const U256& cp = secp256k1::FieldC();
  const U256& n = secp256k1::GroupOrder();
  const U256& cn = secp256k1::OrderC();
  for (int i = 0; i < 40; ++i) {
    U256 a = RandomU256(rng);
    U256 b = RandomU256(rng);
    U512 wide = U256::MulWide(a, b);
    EXPECT_EQ(ReduceWide(wide, p, cp), MulMod(a, b, p));
    EXPECT_EQ(ReduceWide(wide, n, cn), MulMod(a, b, n));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReduceWideTest, ::testing::Range(0, 5));

TEST(U256Test, ReduceWideEdgeValues) {
  const U256& p = secp256k1::FieldPrime();
  const U256& cp = secp256k1::FieldC();
  // 0 and p itself reduce to 0; p-1 stays.
  EXPECT_TRUE(ReduceWide(U512{}, p, cp).IsZero());
  EXPECT_TRUE(ReduceWide(U512::FromU256(p), p, cp).IsZero());
  EXPECT_EQ(ReduceWide(U512::FromU256(p - U256(1)), p, cp), p - U256(1));
  // Max 512-bit value.
  U512 max;
  for (auto& l : max.limb) l = ~0ULL;
  U256 expect = U256::Mod(U256::Max(), p);  // Placeholder sanity: result < p.
  U256 got = ReduceWide(max, p, cp);
  EXPECT_LT(got, p);
  (void)expect;
}

}  // namespace
}  // namespace wedge
