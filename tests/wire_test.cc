#include "net/wire.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace wedge {
namespace {

Bytes SamplePayload() { return ToBytes("hello wedgeblock"); }

// ---------------------------------------------------------------------------
// Framing.

TEST(FrameTest, RoundTrip) {
  Bytes frame = EncodeFrame(SamplePayload());
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + SamplePayload().size());

  FrameDecoder decoder;
  decoder.Feed(frame.data(), frame.size());
  Bytes out;
  auto got = decoder.Next(&out);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(*got);
  EXPECT_EQ(out, SamplePayload());
  // Nothing left.
  got = decoder.Next(&out);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(*got);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameTest, EmptyPayloadFrame) {
  Bytes frame = EncodeFrame(Bytes{});
  FrameDecoder decoder;
  decoder.Feed(frame.data(), frame.size());
  Bytes out = ToBytes("sentinel");
  auto got = decoder.Next(&out);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(*got);
  EXPECT_TRUE(out.empty());
}

TEST(FrameTest, ByteByByteFeed) {
  Bytes frame = EncodeFrame(SamplePayload());
  FrameDecoder decoder;
  Bytes out;
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    decoder.Feed(&frame[i], 1);
    auto got = decoder.Next(&out);
    ASSERT_TRUE(got.ok()) << "at byte " << i;
    EXPECT_FALSE(*got) << "frame completed early at byte " << i;
  }
  decoder.Feed(&frame[frame.size() - 1], 1);
  auto got = decoder.Next(&out);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(*got);
  EXPECT_EQ(out, SamplePayload());
}

TEST(FrameTest, ManyFramesInOneFeed) {
  Bytes stream;
  for (int i = 0; i < 16; ++i) {
    Append(stream, EncodeFrame(ToBytes("payload-" + std::to_string(i))));
  }
  // Plus half of the next frame.
  Bytes last = EncodeFrame(ToBytes("tail"));
  stream.insert(stream.end(), last.begin(), last.begin() + 5);

  FrameDecoder decoder;
  decoder.Feed(stream.data(), stream.size());
  Bytes out;
  for (int i = 0; i < 16; ++i) {
    auto got = decoder.Next(&out);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(*got);
    EXPECT_EQ(out, ToBytes("payload-" + std::to_string(i)));
  }
  auto got = decoder.Next(&out);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(*got);  // Tail incomplete.
  decoder.Feed(last.data() + 5, last.size() - 5);
  got = decoder.Next(&out);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(*got);
  EXPECT_EQ(out, ToBytes("tail"));
}

TEST(FrameTest, BadMagicPoisons) {
  Bytes frame = EncodeFrame(SamplePayload());
  frame[0] ^= 0xFF;
  FrameDecoder decoder;
  decoder.Feed(frame.data(), frame.size());
  Bytes out;
  auto got = decoder.Next(&out);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), Code::kCorruption);
  EXPECT_TRUE(decoder.poisoned());

  // Poisoning is permanent even for subsequent valid bytes.
  Bytes good = EncodeFrame(SamplePayload());
  decoder.Feed(good.data(), good.size());
  got = decoder.Next(&out);
  ASSERT_FALSE(got.ok());
}

TEST(FrameTest, OversizeLengthPoisons) {
  FrameDecoder decoder(/*max_frame_bytes=*/1024);
  Bytes header;
  PutU32(header, kFrameMagic);
  PutU32(header, 1025);  // One byte over the limit.
  decoder.Feed(header.data(), header.size());
  Bytes out;
  auto got = decoder.Next(&out);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), Code::kOutOfRange);
  EXPECT_TRUE(decoder.poisoned());
}

TEST(FrameTest, MaxSizeFrameAccepted) {
  FrameDecoder decoder(/*max_frame_bytes=*/64);
  Rng rng(7);
  Bytes payload = rng.NextBytes(64);
  Bytes frame = EncodeFrame(payload);
  decoder.Feed(frame.data(), frame.size());
  Bytes out;
  auto got = decoder.Next(&out);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(*got);
  EXPECT_EQ(out, payload);
}

TEST(FrameTest, BufferCompacts) {
  // After consuming many frames the internal buffer must not grow without
  // bound; buffered() reflects only unconsumed bytes.
  FrameDecoder decoder;
  Bytes out;
  for (int i = 0; i < 1000; ++i) {
    Bytes frame = EncodeFrame(ToBytes(std::string(100, 'x')));
    decoder.Feed(frame.data(), frame.size());
    auto got = decoder.Next(&out);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(*got);
    EXPECT_EQ(decoder.buffered(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Request / response payload codec.

TEST(RpcCodecTest, RequestRoundTrip) {
  RpcRequest request;
  request.rpc_id = 0x1122334455667788ull;
  request.op = "append";
  request.body = ToBytes("body-bytes");
  auto decoded = RpcRequest::Decode(request.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->rpc_id, request.rpc_id);
  EXPECT_EQ(decoded->op, request.op);
  EXPECT_EQ(decoded->body, request.body);
}

TEST(RpcCodecTest, ResponseRoundTrips) {
  RpcResponse ok_resp = RpcResponse::Success(42, ToBytes("result"));
  auto decoded = RpcResponse::Decode(ok_resp.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->rpc_id, 42u);
  EXPECT_TRUE(decoded->ok);
  EXPECT_EQ(decoded->body, ToBytes("result"));

  RpcResponse err_resp = RpcResponse::Failure(43, "no such entry");
  decoded = RpcResponse::Decode(err_resp.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->rpc_id, 43u);
  EXPECT_FALSE(decoded->ok);
  EXPECT_EQ(decoded->error, "no such entry");
}

TEST(RpcCodecTest, RequestTruncationAtEveryPrefixRejected) {
  RpcRequest request;
  request.rpc_id = 99;
  request.op = "readBatch";
  request.body = ToBytes("0123456789");
  Bytes wire = request.Encode();
  for (size_t n = 0; n < wire.size(); ++n) {
    Bytes prefix(wire.begin(), wire.begin() + n);
    auto decoded = RpcRequest::Decode(prefix);
    EXPECT_FALSE(decoded.ok()) << "prefix of " << n << " bytes decoded";
  }
}

TEST(RpcCodecTest, ResponseTruncationAtEveryPrefixRejected) {
  Bytes ok_wire = RpcResponse::Success(7, ToBytes("abcdef")).Encode();
  Bytes err_wire = RpcResponse::Failure(8, "boom").Encode();
  for (const Bytes& wire : {ok_wire, err_wire}) {
    for (size_t n = 0; n < wire.size(); ++n) {
      Bytes prefix(wire.begin(), wire.begin() + n);
      EXPECT_FALSE(RpcResponse::Decode(prefix).ok())
          << "prefix of " << n << " bytes decoded";
    }
  }
}

TEST(RpcCodecTest, TrailingBytesRejected) {
  RpcRequest traced;
  traced.rpc_id = 1;
  traced.op = "read";
  Bytes request = traced.Encode();
  request.push_back(0);
  EXPECT_FALSE(RpcRequest::Decode(request).ok());

  Bytes response = RpcResponse::Success(1, ToBytes("x")).Encode();
  response.push_back(0);
  EXPECT_FALSE(RpcResponse::Decode(response).ok());
}

TEST(RpcCodecTest, OversizeOpNameRejected) {
  RpcRequest request;
  request.rpc_id = 5;
  request.op = std::string(kMaxOpBytes + 1, 'z');
  auto decoded = RpcRequest::Decode(request.Encode());
  ASSERT_FALSE(decoded.ok());
}

TEST(RpcCodecTest, GarbageNeverDecodes) {
  Rng rng(0xBADF00D);
  for (int i = 0; i < 200; ++i) {
    Bytes garbage = rng.NextBytes(rng.Uniform(64));
    // Either decode succeeds by luck (must be internally consistent) or a
    // typed error comes back. Never a crash.
    auto request = RpcRequest::Decode(garbage);
    if (request.ok()) {
      EXPECT_LE(request->op.size(), kMaxOpBytes);
    }
    (void)RpcResponse::Decode(garbage);
  }
}

// The malformed-frame corpus: mutate valid encoded frames/payloads and make
// sure the decoders always fail cleanly (tested against live transports in
// rpc_test.cc and remote_test.cc).
TEST(RpcCodecTest, MutatedFrameCorpus) {
  Rng rng(2024);
  RpcRequest request;
  request.rpc_id = 77;
  request.op = "append";
  request.body = rng.NextBytes(256);
  const Bytes payload = request.Encode();
  const Bytes frame = EncodeFrame(payload);

  for (int round = 0; round < 500; ++round) {
    Bytes mutant = frame;
    size_t flips = 1 + rng.Uniform(8);
    for (size_t f = 0; f < flips; ++f) {
      mutant[rng.Uniform(mutant.size())] ^= 1 << rng.Uniform(8);
    }
    FrameDecoder decoder(/*max_frame_bytes=*/4096);
    decoder.Feed(mutant.data(), mutant.size());
    Bytes out;
    while (true) {
      auto got = decoder.Next(&out);
      if (!got.ok() || !*got) break;
      (void)RpcRequest::Decode(out);  // Must not crash on mutated payloads.
    }
  }
}

}  // namespace
}  // namespace wedge
