// chaos — scripted fault injection against a fleet of wedgeblockd
// processes (the driver behind tools/chaos.sh and the chaos_test ctest
// entry).
//
// Spawns N single-shard forest-mode daemons, runs a seeded append
// workload across tenants while SIGKILL-ing one process mid-epoch,
// partitioning a second for a timed window and gracefully restarting a
// third, then restarts the crashed process with --recover and audits
// that every client-acked entry is still readable and passes two-level
// verification (stage-1 proof + forest aggregation proof).
//
// Usage:
//   chaos --binary PATH [--work-dir PATH] [--procs N] [--seed N]
//         [--tenants N] [--batches N] [--entries N] [--value-bytes N]
//         [--store file|segment] [--audit-timeout-s N] [--json-out PATH]
//
// --store segment runs every daemon on the segmented store
// (storage/segstore/): the SIGKILL then lands across WAL + sealed
// segments and recovery exercises the O(segments) trailer scan instead
// of the flat-file replay.
//
// Prints a human summary plus one machine-readable "CHAOS_RESULT {...}"
// JSON line (also written to --json-out when given). Exits 0 only on
// zero loss: every acked entry readable, stage-1 verified, and covered
// by a verifying forest proof.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "tools/chaos_harness.h"

namespace wedge {
namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --binary PATH [--work-dir PATH] [--procs N] [--seed N]\n"
      "          [--tenants N] [--batches N] [--entries N]\n"
      "          [--value-bytes N] [--store file|segment]\n"
      "          [--audit-timeout-s N] [--json-out PATH]\n",
      argv0);
  return 2;
}

std::string ReportJson(const ChaosRunOptions& options,
                       const ChaosRunReport& report) {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"seed\": %llu, \"store\": \"%s\", \"procs\": %u, \"kill_victim\": %u, "
      "\"partition_victim\": %u, \"restart_victim\": %u, "
      "\"partition_ms\": %lld, \"batches_attempted\": %llu, "
      "\"batches_acked\": %llu, \"batches_failed\": %llu, "
      "\"entries_acked\": %llu, \"entries_at_risk\": %llu, "
      "\"readable\": %llu, \"stage1_ok\": %llu, \"proofs_ok\": %llu, "
      "\"proofs_total\": %llu, \"lost\": %llu, \"zero_loss\": %s, "
      "\"recovery_ms\": %lld, \"audit_ms\": %lld, \"client_retries\": %llu, "
      "\"breaker_trips\": %llu, \"fast_fails\": %llu}",
      static_cast<unsigned long long>(options.seed),
      std::string(StoreBackendName(options.fleet.store)).c_str(),
      options.fleet.num_procs, report.schedule.kill_victim,
      report.schedule.partition_victim, report.schedule.restart_victim,
      static_cast<long long>(report.schedule.partition_micros /
                             kMicrosPerMilli),
      static_cast<unsigned long long>(report.workload.batches_attempted),
      static_cast<unsigned long long>(report.workload.batches_acked),
      static_cast<unsigned long long>(report.workload.batches_failed),
      static_cast<unsigned long long>(report.workload.entries_acked),
      static_cast<unsigned long long>(
          report.schedule.kill_victim < report.acked_per_shard.size()
              ? report.acked_per_shard[report.schedule.kill_victim]
              : 0),
      static_cast<unsigned long long>(report.audit.readable),
      static_cast<unsigned long long>(report.audit.stage1_ok),
      static_cast<unsigned long long>(report.audit.proof_ok),
      static_cast<unsigned long long>(report.audit.proof_total),
      static_cast<unsigned long long>(report.audit.lost),
      report.audit.zero_loss() ? "true" : "false",
      static_cast<long long>(report.recovery_micros / kMicrosPerMilli),
      static_cast<long long>(report.audit.audit_micros / kMicrosPerMilli),
      static_cast<unsigned long long>(report.client_retries),
      static_cast<unsigned long long>(report.breaker_trips),
      static_cast<unsigned long long>(report.fast_fails));
  return buf;
}

int Run(int argc, char** argv) {
  ChaosRunOptions options;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (flag == "--binary" && (v = next())) {
      options.fleet.daemon_binary = v;
    } else if (flag == "--work-dir" && (v = next())) {
      options.fleet.work_dir = v;
    } else if (flag == "--procs" && (v = next())) {
      options.fleet.num_procs =
          static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (flag == "--seed" && (v = next())) {
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--tenants" && (v = next())) {
      options.tenants = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (flag == "--batches" && (v = next())) {
      options.batches_per_round = std::atoi(v);
    } else if (flag == "--entries" && (v = next())) {
      options.entries_per_batch = std::atoi(v);
    } else if (flag == "--value-bytes" && (v = next())) {
      options.value_bytes = std::atoi(v);
    } else if (flag == "--store" && (v = next())) {
      auto backend = ParseStoreBackend(v);
      if (!backend.ok()) {
        std::fprintf(stderr, "%s\n", backend.status().ToString().c_str());
        return Usage(argv[0]);
      }
      options.fleet.store = *backend;
    } else if (flag == "--audit-timeout-s" && (v = next())) {
      options.audit_timeout = std::atoll(v) * kMicrosPerSecond;
    } else if (flag == "--json-out" && (v = next())) {
      json_out = v;
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.fleet.daemon_binary.empty()) return Usage(argv[0]);
  if (options.fleet.work_dir.empty()) {
    char tmpl[] = "/tmp/wedge-chaos-XXXXXX";
    if (mkdtemp(tmpl) == nullptr) {
      std::fprintf(stderr, "mkdtemp failed\n");
      return 1;
    }
    options.fleet.work_dir = tmpl;
  }

  std::printf("chaos: %u procs, seed %llu, store %s, work dir %s\n",
              options.fleet.num_procs,
              static_cast<unsigned long long>(options.seed),
              std::string(StoreBackendName(options.fleet.store)).c_str(),
              options.fleet.work_dir.c_str());
  auto report = RunChaosScenario(options);
  if (!report.ok()) {
    std::fprintf(stderr, "chaos run failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "schedule: SIGKILL proc %u, partition proc %u (%lld ms), "
      "restart proc %u\n",
      report->schedule.kill_victim, report->schedule.partition_victim,
      static_cast<long long>(report->schedule.partition_micros /
                             kMicrosPerMilli),
      report->schedule.restart_victim);
  std::printf(
      "workload: %llu/%llu batches acked (%llu failed typed), "
      "%llu entries acked, %llu on the killed proc\n",
      static_cast<unsigned long long>(report->workload.batches_acked),
      static_cast<unsigned long long>(report->workload.batches_attempted),
      static_cast<unsigned long long>(report->workload.batches_failed),
      static_cast<unsigned long long>(report->workload.entries_acked),
      static_cast<unsigned long long>(
          report->acked_per_shard[report->schedule.kill_victim]));
  std::printf(
      "audit: %llu/%llu readable, %llu stage-1 ok, %llu/%llu forest "
      "proofs ok, %llu lost; recovery %lld ms\n",
      static_cast<unsigned long long>(report->audit.readable),
      static_cast<unsigned long long>(report->audit.acked),
      static_cast<unsigned long long>(report->audit.stage1_ok),
      static_cast<unsigned long long>(report->audit.proof_ok),
      static_cast<unsigned long long>(report->audit.proof_total),
      static_cast<unsigned long long>(report->audit.lost),
      static_cast<long long>(report->recovery_micros / kMicrosPerMilli));

  if (!report->snapshot_path.empty()) {
    std::printf("fleet metrics snapshot (failed audit): %s\n",
                report->snapshot_path.c_str());
  }
  std::string json = ReportJson(options, *report);
  std::printf("CHAOS_RESULT %s\n", json.c_str());
  if (!json_out.empty()) {
    FILE* f = std::fopen(json_out.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f, "%s\n", json.c_str());
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
    }
  }
  return report->audit.zero_loss() ? 0 : 1;
}

}  // namespace
}  // namespace wedge

int main(int argc, char** argv) { return wedge::Run(argc, argv); }
