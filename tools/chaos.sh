#!/usr/bin/env bash
# Chaos quickstart: run the scripted fault scenario against a fleet of
# wedgeblockd processes built in $BUILD_DIR (default: build/).
#
#   tools/chaos.sh                 # default: 3 procs, seed 0xC4A05
#   tools/chaos.sh --seed 42       # another deterministic schedule
#   tools/chaos.sh --procs 5 --tenants 12 --json-out chaos.json
#   tools/chaos.sh --store segment # fleet on the segmented store engine
#
# Exits non-zero if any client-acked entry is lost or fails two-level
# verification after recovery. See DESIGN.md "Sharded failure model &
# recovery" for what the run proves.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}

for bin in "$BUILD_DIR/tools/chaos" "$BUILD_DIR/tools/wedgeblockd"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (cmake --build $BUILD_DIR --target chaos wedgeblockd)" >&2
    exit 2
  fi
done

exec "$BUILD_DIR/tools/chaos" --binary "$BUILD_DIR/tools/wedgeblockd" "$@"
