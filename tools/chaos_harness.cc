#include "tools/chaos_harness.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <utility>

#include "net/http_client.h"

namespace wedge {
namespace {

Status MakeDir(const std::string& path) {
  if (mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return Status::Ok();
  return Status::Internal("mkdir " + path + ": " + std::strerror(errno));
}

}  // namespace

ChaosFleet::ChaosFleet(ChaosFleetOptions options)
    : options_(std::move(options)),
      // Every process signs with the deployment's default engine key, so
      // one pinned address verifies proofs from the whole fleet.
      engine_address_(
          KeyPair::FromSeed(ShardedDeploymentConfig{}.engine_key_seed)
              .address()) {
  procs_.resize(options_.num_procs);
  for (uint32_t i = 0; i < options_.num_procs; ++i) {
    procs_[i].log_dir = options_.work_dir + "/proc-" + std::to_string(i);
  }
}

ChaosFleet::~ChaosFleet() {
  for (uint32_t i = 0; i < size(); ++i) {
    if (procs_[i].pid > 0) (void)Kill(i, SIGKILL);
  }
}

Status ChaosFleet::StartAll() {
  WEDGE_RETURN_IF_ERROR(MakeDir(options_.work_dir));
  for (uint32_t i = 0; i < size(); ++i) {
    WEDGE_RETURN_IF_ERROR(MakeDir(procs_[i].log_dir));
    WEDGE_RETURN_IF_ERROR(Start(i, /*recover=*/false));
  }
  return Status::Ok();
}

Status ChaosFleet::Start(uint32_t i, bool recover) {
  if (i >= size()) return Status::InvalidArgument("no such process");
  if (procs_[i].pid > 0) return Status::FailedPrecondition("already running");
  return Spawn(procs_[i], recover);
}

Status ChaosFleet::Spawn(Proc& proc, bool recover) {
  int fds[2];
  if (pipe(fds) != 0) return Status::Internal("pipe failed");

  std::vector<std::string> args = {
      options_.daemon_binary,
      "--shards", "1",
      "--forest",
      "--log-dir", proc.log_dir,
      "--batch", std::to_string(options_.batch),
      "--epoch-blocks", std::to_string(options_.epoch_blocks),
      "--mine-ms", std::to_string(options_.mine_ms),
      "--node-threads", "1",
      "--workers", "1",
      // A restart must land on the port clients already dialed.
      "--port", std::to_string(proc.port),
      // Observability endpoint on an ephemeral port (scraped below);
      // a restart may land anywhere, fleetmon re-resolves per round.
      "--admin-port", "0",
  };
  args.push_back("--store");
  args.push_back(std::string(StoreBackendName(options_.store)));
  if (options_.store == StoreBackend::kSegment &&
      options_.segment_positions > 0) {
    args.push_back("--segment-positions");
    args.push_back(std::to_string(options_.segment_positions));
  }
  if (options_.fsync) args.push_back("--fsync");
  if (recover) args.push_back("--recover");

  pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return Status::Internal("fork failed");
  }
  if (pid == 0) {
    // Child: stdout -> pipe, then exec the daemon.
    dup2(fds[1], STDOUT_FILENO);
    close(fds[0]);
    close(fds[1]);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    execv(argv[0], argv.data());
    _exit(127);  // exec failed.
  }
  close(fds[1]);
  proc.pid = pid;
  proc.out_fd = fds[0];

  // Scrape "LISTENING <port>" (printed after recovery, before serving)
  // and "ADMIN <port>" (printed right after it — the daemon is spawned
  // with --admin-port 0, so the observability port is ephemeral).
  std::string scraped;
  proc.admin_port = 0;
  Micros deadline = RealClock::Global()->NowMicros() + options_.spawn_timeout;
  while (true) {
    size_t at = scraped.find("LISTENING ");
    size_t admin_at = scraped.find("ADMIN ");
    if (at != std::string::npos && admin_at != std::string::npos) {
      size_t eol = scraped.find('\n', at);
      size_t admin_eol = scraped.find('\n', admin_at);
      if (eol != std::string::npos && admin_eol != std::string::npos) {
        long port = std::strtol(scraped.c_str() + at + 10, nullptr, 10);
        long admin = std::strtol(scraped.c_str() + admin_at + 6, nullptr, 10);
        if (port <= 0 || port > 65535 || admin <= 0 || admin > 65535) {
          (void)Kill(static_cast<uint32_t>(&proc - procs_.data()), SIGKILL);
          return Status::Internal("daemon printed a bad port");
        }
        proc.port = static_cast<uint16_t>(port);
        proc.admin_port = static_cast<uint16_t>(admin);
        return Status::Ok();
      }
    }
    Micros now = RealClock::Global()->NowMicros();
    if (now >= deadline) {
      (void)Kill(static_cast<uint32_t>(&proc - procs_.data()), SIGKILL);
      return Status::Timeout("daemon never printed LISTENING");
    }
    pollfd pfd{proc.out_fd, POLLIN, 0};
    int timeout_ms = static_cast<int>((deadline - now) / kMicrosPerMilli);
    if (poll(&pfd, 1, std::max(timeout_ms, 1)) <= 0) continue;
    char buf[512];
    ssize_t n = read(proc.out_fd, buf, sizeof(buf));
    if (n <= 0) {
      // Daemon died before listening (port clash, bad flag, ...).
      int status = 0;
      waitpid(proc.pid, &status, 0);
      proc.pid = -1;
      close(proc.out_fd);
      proc.out_fd = -1;
      return Status::Unavailable("daemon exited during startup: " + scraped);
    }
    scraped.append(buf, static_cast<size_t>(n));
  }
}

Status ChaosFleet::Kill(uint32_t i, int sig) {
  if (i >= size()) return Status::InvalidArgument("no such process");
  Proc& proc = procs_[i];
  if (proc.pid <= 0) return Status::FailedPrecondition("not running");
  kill(proc.pid, sig);
  int status = 0;
  waitpid(proc.pid, &status, 0);
  proc.pid = -1;
  proc.admin_port = 0;
  if (proc.out_fd >= 0) {
    close(proc.out_fd);
    proc.out_fd = -1;
  }
  return Status::Ok();
}

bool ChaosFleet::Alive(uint32_t i) {
  if (i >= size() || procs_[i].pid <= 0) return false;
  int status = 0;
  pid_t r = waitpid(procs_[i].pid, &status, WNOHANG);
  if (r == 0) return true;
  procs_[i].pid = -1;  // Reaped: it died behind our back.
  return false;
}

std::string ChaosFleet::EndpointKey(uint32_t i) const {
  return "127.0.0.1:" + std::to_string(procs_[i].port);
}

std::vector<FleetEndpoint> ChaosFleet::Endpoints() const {
  std::vector<FleetEndpoint> out;
  out.reserve(procs_.size());
  for (const Proc& proc : procs_) {
    out.push_back(FleetEndpoint{"127.0.0.1", proc.port});
  }
  return out;
}

Status ChaosFleet::DumpFleetSnapshot(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot write " + path + ": " +
                            std::strerror(errno));
  }
  for (uint32_t i = 0; i < size(); ++i) {
    bool up = false;
    std::string body;
    if (Alive(i) && procs_[i].admin_port != 0) {
      auto resp = HttpGet("127.0.0.1", procs_[i].admin_port, "/metrics.json",
                          3 * kMicrosPerSecond);
      if (resp.ok() && resp->status == 200) {
        up = true;
        body = std::move(resp->body);
      }
    }
    std::fprintf(f,
                 "{\"kind\": \"scrape_target\", \"proc\": %u, \"port\": %u, "
                 "\"admin_port\": %u, \"up\": %s}\n",
                 i, procs_[i].port, procs_[i].admin_port,
                 up ? "true" : "false");
    if (up) {
      std::fwrite(body.data(), 1, body.size(), f);
      if (!body.empty() && body.back() != '\n') std::fputc('\n', f);
    }
  }
  std::fclose(f);
  return Status::Ok();
}

ChaosWorkloadStats RunChaosWorkload(FleetRouter& router,
                                    const Address& engine, uint32_t tenants,
                                    int batches, int entries_per_batch,
                                    int value_bytes, Rng& rng,
                                    std::vector<uint64_t>& seqs,
                                    std::vector<AckedEntry>* ledger) {
  ChaosWorkloadStats stats;
  std::vector<KeyPair> publishers;
  publishers.reserve(tenants);
  for (uint32_t t = 0; t < tenants; ++t) {
    publishers.push_back(KeyPair::FromSeed(0x9A00 + t));
  }
  if (seqs.size() < tenants) seqs.resize(tenants, 0);

  for (int b = 0; b < batches; ++b) {
    uint32_t tenant = static_cast<uint32_t>(b) % tenants;
    std::vector<AppendRequest> requests;
    requests.reserve(entries_per_batch);
    for (int e = 0; e < entries_per_batch; ++e) {
      requests.push_back(AppendRequest::Make(
          publishers[tenant], seqs[tenant]++, ToBytes(rng.NextString(8)),
          rng.NextBytes(static_cast<size_t>(value_bytes))));
    }
    ++stats.batches_attempted;
    auto responses = router.Append(tenant, requests);
    if (!responses.ok()) {
      ++stats.batches_failed;
      continue;
    }
    ++stats.batches_acked;
    for (const Stage1Response& response : *responses) {
      // Only an ack a real client would accept counts as an obligation.
      if (!response.Verify(engine)) continue;
      ++stats.entries_acked;
      if (ledger != nullptr) {
        ledger->push_back(AckedEntry{tenant, response.index.log_id,
                                     response.index.offset,
                                     response.entry.get()});
      }
    }
  }
  return stats;
}

ChaosAuditReport AuditAckedEntries(FleetRouter& router, const Address& engine,
                                   const std::vector<AckedEntry>& ledger,
                                   Micros timeout) {
  ChaosAuditReport report;
  report.acked = ledger.size();
  Micros started = RealClock::Global()->NowMicros();
  Micros deadline = started + timeout;

  for (const AckedEntry& acked : ledger) {
    bool ok = false;
    while (RealClock::Global()->NowMicros() < deadline) {
      auto read = router.ReadOne(
          acked.tenant, EntryIndex{acked.log_id, acked.offset});
      if (read.ok()) {
        ++report.readable;
        if (read->Verify(engine) && read->entry.get() == acked.entry) {
          ++report.stage1_ok;
          ok = true;
        }
        break;  // A wrong payload will not improve with retries.
      }
      // kUnavailable / circuit-open while the process recovers: retry.
      usleep(100 * 1000);
    }
    if (!ok) ++report.lost;
  }

  // Level two: one forest proof per distinct (tenant, log).
  std::map<std::pair<TenantId, uint64_t>, bool> logs;
  for (const AckedEntry& acked : ledger) {
    logs.emplace(std::make_pair(acked.tenant, acked.log_id), false);
  }
  report.proof_total = logs.size();
  for (auto& [key, done] : logs) {
    while (!done && RealClock::Global()->NowMicros() < deadline) {
      auto proof = router.FetchAggregationProof(key.first, key.second);
      if (proof.ok()) {
        done = proof->log_id == key.second && proof->Verify(engine);
        break;  // A bad proof is a verdict, not a transient.
      }
      // NotFound until the recovered aggregator closes/resubmits the
      // epoch; kUnavailable while the breaker is still reprobing.
      usleep(100 * 1000);
    }
    if (done) ++report.proof_ok;
  }
  report.audit_micros = RealClock::Global()->NowMicros() - started;
  return report;
}

ChaosSchedule MakeChaosSchedule(uint64_t seed, uint32_t procs) {
  ChaosSchedule schedule;
  Rng rng(seed ^ 0xC4A055EEDull);
  schedule.kill_victim = static_cast<uint32_t>(rng.Uniform(procs));
  schedule.partition_victim =
      (schedule.kill_victim + 1 + static_cast<uint32_t>(
                                      rng.Uniform(procs > 1 ? procs - 1 : 1))) %
      procs;
  do {
    schedule.restart_victim = static_cast<uint32_t>(rng.Uniform(procs));
  } while (procs >= 3 && (schedule.restart_victim == schedule.kill_victim ||
                          schedule.restart_victim ==
                              schedule.partition_victim));
  schedule.partition_micros =
      (300 + rng.Uniform(400)) * kMicrosPerMilli;
  return schedule;
}

Result<ChaosRunReport> RunChaosScenario(const ChaosRunOptions& options) {
  if (options.fleet.num_procs < 3) {
    return Status::InvalidArgument("scenario needs >= 3 processes");
  }
  ChaosRunReport report;
  report.schedule = MakeChaosSchedule(options.seed, options.fleet.num_procs);
  const ChaosSchedule& schedule = report.schedule;

  ChaosFleet fleet(options.fleet);
  WEDGE_RETURN_IF_ERROR(fleet.StartAll());

  // The fault layer is a pure partition switch here (no random drops):
  // the scripted schedule is the randomness, derived from the seed.
  auto faults = std::make_shared<FaultyTransport>(FaultSpec{});
  FleetRouterConfig router_config;
  router_config.endpoints = fleet.Endpoints();
  router_config.client.rpc_timeout = 2 * kMicrosPerSecond;
  router_config.client.faults = faults;
  router_config.client.retry_jitter_seed = options.seed;
  FleetRouter router(KeyPair::FromSeed(0xC11E), fleet.engine_address(),
                     router_config);
  WEDGE_RETURN_IF_ERROR(router.Connect());

  Rng rng(options.seed);
  std::vector<uint64_t> seqs(options.tenants, 0);
  std::vector<AckedEntry> ledger;
  auto run_round = [&] {
    ChaosWorkloadStats stats = RunChaosWorkload(
        router, fleet.engine_address(), options.tenants,
        options.batches_per_round, options.entries_per_batch,
        options.value_bytes, rng, seqs, &ledger);
    report.workload.batches_attempted += stats.batches_attempted;
    report.workload.batches_acked += stats.batches_acked;
    report.workload.batches_failed += stats.batches_failed;
    report.workload.entries_acked += stats.entries_acked;
  };

  // Round 1: healthy warm-up. Entries land mid-epoch by construction —
  // the kill below does not wait for an epoch boundary.
  run_round();

  // Fault 1: SIGKILL one process mid-epoch. Its tenants' appends fail
  // typed from here; everything already acked is the audit's business.
  WEDGE_RETURN_IF_ERROR(fleet.Kill(schedule.kill_victim, SIGKILL));
  run_round();

  // Fault 2: timed partition of a second process (client-side drops, the
  // process itself keeps mining and closing epochs).
  faults->Partition(fleet.EndpointKey(schedule.partition_victim));
  Micros partition_started = RealClock::Global()->NowMicros();
  run_round();
  Micros partition_elapsed =
      RealClock::Global()->NowMicros() - partition_started;
  if (partition_elapsed < schedule.partition_micros) {
    usleep(static_cast<useconds_t>(schedule.partition_micros -
                                   partition_elapsed));
  }
  faults->Heal(fleet.EndpointKey(schedule.partition_victim));

  // Fault 3: graceful restart of a third process (the "aggregator
  // restart": SIGTERM drains in-flight replies, --recover replays the
  // journal; on the fresh sim chain every journaled epoch resubmits).
  WEDGE_RETURN_IF_ERROR(fleet.Kill(schedule.restart_victim, SIGTERM));
  WEDGE_RETURN_IF_ERROR(fleet.Start(schedule.restart_victim,
                                    /*recover=*/true));

  // Recovery: restart the crashed process over its log directory.
  Micros recover_started = RealClock::Global()->NowMicros();
  WEDGE_RETURN_IF_ERROR(fleet.Start(schedule.kill_victim, /*recover=*/true));

  // Round 4: the whole fleet must serve again (breakers reprobe).
  run_round();

  report.acked_per_shard.assign(options.fleet.num_procs, 0);
  for (const AckedEntry& acked : ledger) {
    ++report.acked_per_shard[router.ShardFor(acked.tenant)];
  }
  report.audit = AuditAckedEntries(router, fleet.engine_address(), ledger,
                                   options.audit_timeout);
  if (!report.audit.zero_loss()) {
    // Post-mortem: freeze the fleet's metrics before tearing it down so
    // a failed audit leaves per-process counters (ingest totals, error
    // responses, aggregator progress) next to the work dir's logs.
    std::string snapshot = options.fleet.work_dir + "/fleet_snapshot.jsonl";
    if (fleet.DumpFleetSnapshot(snapshot).ok()) {
      report.snapshot_path = snapshot;
    }
  }
  report.recovery_micros =
      RealClock::Global()->NowMicros() - recover_started;
  report.client_retries = router.retries();
  report.breaker_trips = router.breaker_trips();
  report.fast_fails = router.fast_fails();
  router.Close();
  return report;
}

}  // namespace wedge
