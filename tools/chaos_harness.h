#ifndef WEDGEBLOCK_TOOLS_CHAOS_HARNESS_H_
#define WEDGEBLOCK_TOOLS_CHAOS_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "net/fault_transport.h"
#include "shard/fleet_router.h"
#include "shard/sharded_engine.h"

namespace wedge {

/// A chaos fleet: N `wedgeblockd` shard processes, each a single-shard
/// forest-mode engine (`--shards 1 --forest --log-dir ...`) over real TCP.
/// Together they form the PR-5 sharded topology split across OS
/// processes: tenants map to processes via the client-side
/// consistent-hash ring (FleetRouter), stage 2 runs through each
/// process's own journaled epoch aggregator, and a SIGKILL'd process can
/// be restarted over its log directory with `--recover`.
struct ChaosFleetOptions {
  std::string daemon_binary;  ///< Path to the wedgeblockd executable.
  std::string work_dir;       ///< Scratch root; per-proc log dirs below it.
  uint32_t num_procs = 3;
  int64_t mine_ms = 25;       ///< Sim-chain block interval per process.
  uint32_t epoch_blocks = 4;  ///< Blocks per forest epoch.
  uint32_t batch = 4;         ///< Stage-1 Merkle batch size.
  bool fsync = false;         ///< SIGKILL survives the page cache either way.
  /// Shard store implementation passed through as `--store`.
  StoreBackend store = StoreBackend::kFile;
  /// Segment backend: seal every N positions (default tiny, so even the
  /// short scenario workload crosses seal boundaries and the SIGKILL +
  /// recovery exercise both sealed segments and the WAL tail).
  uint64_t segment_positions = 4;
  /// How long to wait for a spawned daemon to print "LISTENING <port>".
  Micros spawn_timeout = 60 * kMicrosPerSecond;
};

/// Spawns and supervises the fleet. Every mutator is synchronous:
/// Start() returns once the daemon accepts connections, Kill() once the
/// process is reaped. The destructor SIGKILLs anything still alive.
class ChaosFleet {
 public:
  explicit ChaosFleet(ChaosFleetOptions options);
  ~ChaosFleet();

  ChaosFleet(const ChaosFleet&) = delete;
  ChaosFleet& operator=(const ChaosFleet&) = delete;

  Status StartAll();
  /// (Re)starts process `i`. With `recover` the daemon replays its
  /// aggregator journal and resubmits unconfirmed epochs before serving.
  /// A restart reuses the port scraped at first launch, so clients
  /// redial transparently.
  Status Start(uint32_t i, bool recover);
  /// Sends `sig` (SIGKILL = crash, SIGTERM = graceful drain) and reaps.
  Status Kill(uint32_t i, int sig);
  bool Alive(uint32_t i);

  uint16_t port(uint32_t i) const { return procs_[i].port; }
  /// Ephemeral admin (observability) port of process `i` — every daemon
  /// is spawned with `--admin-port 0` and the scraped port is refreshed
  /// on each (re)start. 0 while the process is down.
  uint16_t admin_port(uint32_t i) const { return procs_[i].admin_port; }
  /// "host:port", the key FaultyTransport partitions are scoped by.
  std::string EndpointKey(uint32_t i) const;
  std::vector<FleetEndpoint> Endpoints() const;
  /// Scrapes /metrics.json from every live process's admin endpoint and
  /// writes one JSONL file at `path`: a {"kind": "scrape_target"} header
  /// line per process followed by its raw metric lines. Dead or
  /// unresponsive processes get an up=false header. This is the
  /// post-mortem a failed audit leaves behind.
  Status DumpFleetSnapshot(const std::string& path);
  /// The transport/proof address every process signs with (the fleet
  /// shares one engine key seed).
  const Address& engine_address() const { return engine_address_; }
  uint32_t size() const { return static_cast<uint32_t>(procs_.size()); }

 private:
  struct Proc {
    pid_t pid = -1;
    uint16_t port = 0;  ///< 0 until first scrape; stable afterwards.
    uint16_t admin_port = 0;  ///< Ephemeral; rescraped on every spawn.
    std::string log_dir;
    int out_fd = -1;  ///< Read end of the child's stdout pipe.
  };

  Status Spawn(Proc& proc, bool recover);

  ChaosFleetOptions options_;
  Address engine_address_;
  std::vector<Proc> procs_;
};

/// One client-acked entry — the durability obligation the audit checks.
struct AckedEntry {
  TenantId tenant = 0;
  uint64_t log_id = 0;
  uint32_t offset = 0;
  /// The acked leaf bytes (serialized AppendRequest): what a re-read
  /// after recovery must return byte-for-byte.
  Bytes entry;
};

struct ChaosWorkloadStats {
  uint64_t batches_attempted = 0;
  uint64_t batches_acked = 0;
  uint64_t batches_failed = 0;  ///< Typed failures; never enter the ledger.
  uint64_t entries_acked = 0;
};

/// Appends `batches` batches of `entries_per_batch` seeded random
/// entries, round-robin across tenants 0..tenants-1 (publisher key seed
/// 0x9A00 + tenant, sequence counters in `seqs`). Each response is
/// stage-1 verified against `engine` before its entry is recorded in
/// `ledger`: only entries the client would treat as acked count.
ChaosWorkloadStats RunChaosWorkload(FleetRouter& router,
                                    const Address& engine, uint32_t tenants,
                                    int batches, int entries_per_batch,
                                    int value_bytes, Rng& rng,
                                    std::vector<uint64_t>& seqs,
                                    std::vector<AckedEntry>* ledger);

struct ChaosAuditReport {
  uint64_t acked = 0;       ///< Ledger size.
  uint64_t readable = 0;    ///< ReadOne succeeded post-chaos.
  uint64_t stage1_ok = 0;   ///< Fresh response verified + payload matches.
  uint64_t proof_ok = 0;    ///< Distinct (tenant, log) forest proofs OK.
  uint64_t proof_total = 0; ///< Distinct (tenant, log) pairs audited.
  uint64_t lost = 0;        ///< Acked entries that failed any check.
  Micros audit_micros = 0;
  bool zero_loss() const { return lost == 0 && proof_ok == proof_total; }
};

/// Two-level audit of every acked entry: (1) ReadOne returns it and the
/// fresh Stage1Response verifies with the original key/value; (2) for
/// every distinct (tenant, log) a forest AggregationProof verifies
/// against the engine address. Polls with retries until `timeout` —
/// recovered processes need a few epochs to resubmit journaled roots.
ChaosAuditReport AuditAckedEntries(FleetRouter& router, const Address& engine,
                                   const std::vector<AckedEntry>& ledger,
                                   Micros timeout);

/// Seed-derived fault schedule. Pure: the same (seed, procs) always
/// yields the same victims and timings, which is what makes a chaos run
/// reproducible; wall-clock interleaving still varies run to run, but
/// the zero-loss guarantee must hold under every interleaving.
struct ChaosSchedule {
  uint32_t kill_victim = 0;       ///< SIGKILL mid-epoch, later --recover.
  uint32_t partition_victim = 0;  ///< Timed client<->process partition.
  uint32_t restart_victim = 0;    ///< Graceful SIGTERM restart (aggregator).
  Micros partition_micros = 0;    ///< How long the partition stays up.
};
ChaosSchedule MakeChaosSchedule(uint64_t seed, uint32_t procs);

struct ChaosRunOptions {
  ChaosFleetOptions fleet;
  uint64_t seed = 0xC4A05;
  uint32_t tenants = 6;
  int batches_per_round = 8;
  int entries_per_batch = 4;
  int value_bytes = 64;
  Micros audit_timeout = 45 * kMicrosPerSecond;
};

struct ChaosRunReport {
  ChaosSchedule schedule;
  ChaosWorkloadStats workload;
  ChaosAuditReport audit;
  /// Acked entries per fleet process (ring position of their tenants) —
  /// proves the SIGKILL victim actually held obligations.
  std::vector<uint64_t> acked_per_shard;
  /// Crash restart (--recover) to every acked entry auditable.
  Micros recovery_micros = 0;
  uint64_t client_retries = 0;
  uint64_t breaker_trips = 0;
  uint64_t fast_fails = 0;
  /// Where the failed-audit fleet snapshot was written (empty when the
  /// audit passed or the dump itself failed).
  std::string snapshot_path;
};

/// The scripted scenario the acceptance gate names: healthy warm-up,
/// SIGKILL one process mid-epoch, a timed partition of a second, a
/// graceful restart of a third, recovery of the crashed process with
/// --recover, a final healthy round, then the full two-level audit.
/// Requires fleet.num_procs >= 3.
Result<ChaosRunReport> RunChaosScenario(const ChaosRunOptions& options);

}  // namespace wedge

#endif  // WEDGEBLOCK_TOOLS_CHAOS_HARNESS_H_
