#!/usr/bin/env bash
# Tier-1 verification under sanitizers: builds the repo and runs ctest
# with AddressSanitizer and UndefinedBehaviorSanitizer instrumentation
# (see the WEDGE_SANITIZE option in the top-level CMakeLists.txt),
# re-runs the crypto/Merkle suites with hardware crypto disabled (the
# scalar SHA-256 backend must stay byte-identical), and finishes with the
# hot-path performance smoke test (tools/perf_smoke.sh).
#
# Usage: tools/check.sh [sanitizer ...]
#   Default sanitizers: address undefined. "thread" is also accepted.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
sanitizers=("$@")
if [ ${#sanitizers[@]} -eq 0 ]; then
  sanitizers=(address undefined)
fi

for san in "${sanitizers[@]}"; do
  build_dir="$repo_root/build-$san"
  echo "==> [$san] configuring $build_dir"
  cmake -B "$build_dir" -S "$repo_root" -DWEDGE_SANITIZE="$san" >/dev/null
  echo "==> [$san] building"
  cmake --build "$build_dir" -j "$(nproc)" >/dev/null
  echo "==> [$san] running tier-1 tests"
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
  echo "==> [$san] OK"
done

# The heavily multi-threaded subsystems get a dedicated ThreadSanitizer
# pass even in the default run: the telemetry registry and tracer (sharded
# histograms, concurrent Append workers), the TCP RPC stack (epoll
# workers, pipelined client reader threads, wire_test/rpc_test), and the
# sharded multi-tenant engine (admission controller + epoch aggregator
# hit from concurrent RPC workers, shard_test/shard_rpc_test), and the
# segmented store's leader-based group commit (concurrent
# AppendPrepare/WaitDurable cohorts, segstore_test). A full-suite TSan
# run can still be requested explicitly with `tools/check.sh thread`.
if [[ ! " ${sanitizers[*]} " =~ " thread " ]]; then
  build_dir="$repo_root/build-thread"
  echo "==> [thread] configuring $build_dir (concurrent-subsystem tests only)"
  cmake -B "$build_dir" -S "$repo_root" -DWEDGE_SANITIZE=thread >/dev/null
  echo "==> [thread] building"
  cmake --build "$build_dir" -j "$(nproc)" >/dev/null
  echo "==> [thread] running concurrent-subsystem tests"
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" \
    -R 'telemetry|stage2_submitter|chain_test|integration|wire_test|rpc_test|shard|fault_transport|fleet_router|agg_journal|chaos_test|trace_propagation|admin_http|fleet_merge|core_test|segstore'
  echo "==> [thread] OK"
fi

echo "All sanitizer runs passed: ${sanitizers[*]} thread(concurrent subset)"

# Crypto equivalence under the forced-portable configuration: the same
# tests that pin each backend also run with hardware crypto disabled, so
# the scalar path is exercised even on SHA-NI/AVX2 machines.
scalar_build="$repo_root/build-${sanitizers[0]}"
echo "==> [scalar] re-running crypto/merkle tests with WEDGE_DISABLE_HWCRYPTO=1"
WEDGE_DISABLE_HWCRYPTO=1 ctest --test-dir "$scalar_build" \
  --output-on-failure -R 'crypto_test|merkle_test'
echo "==> [scalar] OK"

# EC equivalence with the precomputed tables forced off: every public
# scalar-multiplication entry point routes to the naive double-and-add
# reference, so secp256k1/ecdsa/equivalence tests prove the slow path
# still produces byte-identical signatures (and core_test exercises the
# signer pool on top of it).
echo "==> [ec-reference] re-running EC tests with WEDGE_EC_BACKEND=reference"
WEDGE_EC_BACKEND=reference ctest --test-dir "$scalar_build" \
  --output-on-failure -R 'crypto_test|ec_equiv_test|core_test'
echo "==> [ec-reference] OK"

echo "==> running hot-path perf smoke"
"$repo_root/tools/perf_smoke.sh"

# Chaos smoke: a short scripted kill + partition + recover run against
# real wedgeblockd processes (see tools/chaos.sh). Fails the check if any
# client-acked entry is lost or flunks two-level verification. Reuses the
# first sanitizer build, so the daemons run instrumented.
echo "==> running chaos smoke"
chaos_work="$(mktemp -d /tmp/wedge-chaos-check-XXXXXX)"
BUILD_DIR="$repo_root/build-${sanitizers[0]}" "$repo_root/tools/chaos.sh" \
  --work-dir "$chaos_work" --batches 4 --tenants 4 --audit-timeout-s 90
rm -rf "$chaos_work"
echo "==> chaos smoke OK"

# Observability smoke: 2-process fleet with live admin endpoints — merged
# fleetmon counters must equal the loadgen ground truth and at least one
# trace must stitch client + daemon spans end to end (tools/obs_smoke.sh).
echo "==> running observability smoke"
BUILD_DIR="$repo_root/build-${sanitizers[0]}" "$repo_root/tools/obs_smoke.sh"
echo "==> observability smoke OK"
