#!/usr/bin/env bash
# Tier-1 verification under sanitizers: builds the repo and runs ctest
# with AddressSanitizer and UndefinedBehaviorSanitizer instrumentation
# (see the WEDGE_SANITIZE option in the top-level CMakeLists.txt).
#
# Usage: tools/check.sh [sanitizer ...]
#   Default sanitizers: address undefined. "thread" is also accepted.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
sanitizers=("$@")
if [ ${#sanitizers[@]} -eq 0 ]; then
  sanitizers=(address undefined)
fi

for san in "${sanitizers[@]}"; do
  build_dir="$repo_root/build-$san"
  echo "==> [$san] configuring $build_dir"
  cmake -B "$build_dir" -S "$repo_root" -DWEDGE_SANITIZE="$san" >/dev/null
  echo "==> [$san] building"
  cmake --build "$build_dir" -j "$(nproc)" >/dev/null
  echo "==> [$san] running tier-1 tests"
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
  echo "==> [$san] OK"
done

# The heavily multi-threaded subsystems get a dedicated ThreadSanitizer
# pass even in the default run: the telemetry registry and tracer (sharded
# histograms, concurrent Append workers) and the TCP RPC stack (epoll
# workers, pipelined client reader threads, wire_test/rpc_test). A
# full-suite TSan run can still be requested explicitly with
# `tools/check.sh thread`.
if [[ ! " ${sanitizers[*]} " =~ " thread " ]]; then
  build_dir="$repo_root/build-thread"
  echo "==> [thread] configuring $build_dir (concurrent-subsystem tests only)"
  cmake -B "$build_dir" -S "$repo_root" -DWEDGE_SANITIZE=thread >/dev/null
  echo "==> [thread] building"
  cmake --build "$build_dir" -j "$(nproc)" >/dev/null
  echo "==> [thread] running concurrent-subsystem tests"
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" \
    -R 'telemetry|stage2_submitter|chain_test|integration|wire_test|rpc_test'
  echo "==> [thread] OK"
fi

echo "All sanitizer runs passed: ${sanitizers[*]} thread(concurrent subset)"
