// fleetmon — fleet-wide observability scraper for wedgeblockd daemons.
//
// Polls the /metrics.json admin endpoint of every target each round,
// merges the per-process snapshots losslessly (counters/gauges sum,
// histogram buckets add, quantiles recomputed from the merged buckets —
// see src/telemetry/fleet_merge.h), and emits ONE consolidated JSONL row
// per round:
//
//   - fleet totals: rpc requests, entries ingested, error responses,
//     quota rejections, slow requests, dropped trace spans
//   - merged append-latency p50/p99 across every process
//   - cross-shard skew of entries ingested (max/mean; 1.0 = balanced)
//   - per-target health: up flag plus per-second error/quota/slow rates
//     over the scrape interval (first round reports cumulative counts)
//
// A target that fails to answer (connect refused, timeout, malformed
// body) is reported down for the round; the merge proceeds over the
// processes that did answer, so one dead shard never blinds the monitor.
//
// Usage:
//   fleetmon --targets H:P,H:P,... [--interval-ms N] [--rounds N]
//            [--out PATH]
//
// --rounds 0 polls forever (operator mode); the smoke tests use a small
// finite count. --out appends rows to PATH instead of stdout.

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/clock.h"
#include "common/result.h"
#include "net/http_client.h"
#include "telemetry/fleet_merge.h"
#include "telemetry/metrics.h"

namespace wedge {
namespace {

struct Target {
  std::string host;
  uint16_t port = 0;
  std::string label;  // "host:port" as given.
};

struct Options {
  std::vector<Target> targets;
  int64_t interval_ms = 1000;
  int64_t rounds = 1;
  std::string out;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --targets H:P,H:P,... [--interval-ms N]\n"
               "          [--rounds N] [--out PATH]\n"
               "--rounds 0 polls until killed.\n",
               argv0);
  return 2;
}

Result<std::vector<Target>> ParseTargets(const std::string& spec) {
  std::vector<Target> targets;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    std::string item = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    while (!item.empty() && item.front() == ' ') item.erase(item.begin());
    while (!item.empty() && item.back() == ' ') item.pop_back();
    size_t colon = item.rfind(':');
    if (item.empty() || colon == std::string::npos || colon == 0) {
      return Status::InvalidArgument("--targets item must be host:port: '" +
                                     item + "'");
    }
    unsigned long p = std::strtoul(item.c_str() + colon + 1, nullptr, 10);
    if (p == 0 || p > 65535) {
      return Status::InvalidArgument("bad port in '" + item + "'");
    }
    Target t;
    t.host = item.substr(0, colon);
    t.port = static_cast<uint16_t>(p);
    t.label = item;
    targets.push_back(std::move(t));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return targets;
}

Result<Options> Parse(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument(flag + " needs a value");
      }
      return std::string(argv[++i]);
    };
    if (flag == "--targets") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      WEDGE_ASSIGN_OR_RETURN(opts.targets, ParseTargets(v));
    } else if (flag == "--interval-ms") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.interval_ms = std::atoll(v.c_str());
    } else if (flag == "--rounds") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.rounds = std::atoll(v.c_str());
    } else if (flag == "--out") {
      WEDGE_ASSIGN_OR_RETURN(opts.out, next());
    } else {
      return Status::InvalidArgument("unknown flag " + flag);
    }
  }
  if (opts.targets.empty()) {
    return Status::InvalidArgument("need --targets");
  }
  if (opts.interval_ms < 1 || opts.rounds < 0) {
    return Status::InvalidArgument("bad flag value");
  }
  return opts;
}

/// Counters a per-target rate is derived from between rounds.
struct TargetCounters {
  bool seen = false;
  uint64_t errors = 0;
  uint64_t quota = 0;
  uint64_t slow = 0;
};

uint64_t QuotaRejections(const MetricsSnapshot& snap) {
  return snap.CounterValue("wedge.engine.quota_rejections_rate") +
         snap.CounterValue("wedge.engine.quota_rejections_inflight") +
         snap.CounterValue("wedge.engine.quota_rejections_tenant");
}

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

int Run(const Options& opts) {
  FILE* sink = stdout;
  if (!opts.out.empty()) {
    sink = std::fopen(opts.out.c_str(), "a");
    if (sink == nullptr) {
      std::fprintf(stderr, "fleetmon: cannot open %s\n", opts.out.c_str());
      return 1;
    }
  }
  std::vector<TargetCounters> prev(opts.targets.size());
  double interval_s = static_cast<double>(opts.interval_ms) / 1000.0;
  for (int64_t round = 0; opts.rounds == 0 || round < opts.rounds; ++round) {
    if (round > 0) usleep(static_cast<useconds_t>(opts.interval_ms * 1000));
    std::vector<MetricsSnapshot> up_snaps;
    std::string per_target = "[";
    size_t up = 0;
    for (size_t i = 0; i < opts.targets.size(); ++i) {
      const Target& t = opts.targets[i];
      if (i > 0) per_target += ", ";
      Result<HttpResponse> resp =
          HttpGet(t.host, t.port, "/metrics.json", 3 * kMicrosPerSecond);
      Result<MetricsSnapshot> snap =
          resp.ok() && resp->status == 200
              ? ParseMetricsJsonLines(resp->body)
              : Result<MetricsSnapshot>(
                    resp.ok() ? Status::Unavailable(
                                    "http " + std::to_string(resp->status))
                              : resp.status());
      if (!snap.ok()) {
        prev[i].seen = false;
        AppendF(per_target, "{\"target\": \"%s\", \"up\": false}",
                t.label.c_str());
        continue;
      }
      ++up;
      uint64_t errors = snap->CounterValue("wedge.rpc.responses_error");
      uint64_t quota = QuotaRejections(*snap);
      uint64_t slow = snap->CounterValue("wedge.rpc.slow_requests");
      // First sight of a target reports rates over its whole lifetime
      // baseline (cumulative / interval is meaningless), so rates are
      // emitted only once a previous round established a baseline.
      AppendF(per_target,
              "{\"target\": \"%s\", \"up\": true, \"requests\": %llu, "
              "\"entries_ingested\": %llu",
              t.label.c_str(),
              static_cast<unsigned long long>(
                  snap->CounterValue("wedge.rpc.requests")),
              static_cast<unsigned long long>(
                  snap->CounterValue("wedge.node.entries_ingested")));
      if (prev[i].seen) {
        AppendF(per_target,
                ", \"err_per_s\": %.3f, \"quota_per_s\": %.3f, "
                "\"slow_per_s\": %.3f",
                (errors - prev[i].errors) / interval_s,
                (quota - prev[i].quota) / interval_s,
                (slow - prev[i].slow) / interval_s);
      }
      AppendF(per_target,
              ", \"errors\": %llu, \"quota_rejections\": %llu, "
              "\"slow_requests\": %llu}",
              static_cast<unsigned long long>(errors),
              static_cast<unsigned long long>(quota),
              static_cast<unsigned long long>(slow));
      prev[i] = {true, errors, quota, slow};
      up_snaps.push_back(std::move(snap).value());
    }
    per_target += "]";

    MetricsSnapshot merged = MergeSnapshots(up_snaps);
    double skew = CounterSkew(up_snaps, "wedge.node.entries_ingested");
    std::string row = "{\"kind\": \"fleetmon\"";
    AppendF(row, ", \"round\": %lld", static_cast<long long>(round));
    AppendF(row, ", \"at_us\": %lld",
            static_cast<long long>(RealClock::Global()->NowMicros()));
    AppendF(row, ", \"targets\": %zu, \"up\": %zu", opts.targets.size(), up);
    AppendF(row, ", \"skew_entries_ingested\": %.4f", skew);
    AppendF(row, ", \"requests\": %llu",
            static_cast<unsigned long long>(
                merged.CounterValue("wedge.rpc.requests")));
    AppendF(row, ", \"entries_ingested\": %llu",
            static_cast<unsigned long long>(
                merged.CounterValue("wedge.node.entries_ingested")));
    AppendF(row, ", \"responses_error\": %llu",
            static_cast<unsigned long long>(
                merged.CounterValue("wedge.rpc.responses_error")));
    AppendF(row, ", \"quota_rejections\": %llu",
            static_cast<unsigned long long>(QuotaRejections(merged)));
    AppendF(row, ", \"slow_requests\": %llu",
            static_cast<unsigned long long>(
                merged.CounterValue("wedge.rpc.slow_requests")));
    AppendF(row, ", \"trace_dropped\": %llu",
            static_cast<unsigned long long>(
                merged.CounterValue("wedge.trace.dropped")));
    AppendF(row, ", \"epochs_closed\": %llu",
            static_cast<unsigned long long>(
                merged.CounterValue("wedge.engine.epochs_closed")));
    const HistogramSnapshot* append_us =
        merged.FindHistogram("wedge.rpc.append_us");
    if (append_us != nullptr && append_us->count > 0) {
      AppendF(row, ", \"append_p50_us\": %llu, \"append_p99_us\": %llu",
              static_cast<unsigned long long>(append_us->ValueAtQuantile(0.5)),
              static_cast<unsigned long long>(
                  append_us->ValueAtQuantile(0.99)));
    }
    row += ", \"per_target\": " + per_target + "}";
    std::fprintf(sink, "%s\n", row.c_str());
    std::fflush(sink);
  }
  if (sink != stdout) std::fclose(sink);
  return 0;
}

}  // namespace
}  // namespace wedge

int main(int argc, char** argv) {
  const char* skip = std::getenv("WEDGE_SKIP_SOCKET_TESTS");
  if (skip != nullptr && skip[0] == '1') {
    std::printf("fleetmon SKIPPED (WEDGE_SKIP_SOCKET_TESTS)\n");
    return 0;
  }
  auto opts = wedge::Parse(argc, argv);
  if (!opts.ok()) {
    std::fprintf(stderr, "%s\n", opts.status().ToString().c_str());
    return wedge::Usage(argv[0]);
  }
  return wedge::Run(*opts);
}
