#!/usr/bin/env bash
# Observability smoke: proves the fleet-wide observability plane end to
# end against REAL processes, with nothing mocked:
#
#   1. Spawns a 2-daemon wedgeblockd fleet (forest mode, admin endpoints
#      on ephemeral ports) and scrapes the LISTENING/ADMIN port lines.
#   2. Drives a short fleet-mode loadgen run with every append traced
#      (--trace-every 1) and a client-side telemetry dump.
#   3. Curls /metrics (Prometheus text must contain real samples),
#      /metrics.json, and /healthz (must be ready) on both daemons.
#   4. Runs fleetmon one round across both admin endpoints and checks the
#      merged fleet-wide entries_ingested equals what loadgen acked —
#      i.e. cross-process counter merging is lossless.
#   5. SIGTERMs the daemons (flushing their telemetry dumps), stitches
#      client + both daemon dumps with trace_summary.py --traces, and
#      requires at least one trace whose timeline spans BOTH processes:
#      client_enqueue/router_pick from the loadgen dump joined with
#      rpc_recv/ingest from a daemon dump under one trace id.
#
# Usage: BUILD_DIR=build tools/obs_smoke.sh [--keep]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
KEEP=${1:-}

for bin in "$BUILD_DIR/tools/wedgeblockd" "$BUILD_DIR/tools/fleetmon" \
           "$BUILD_DIR/bench/loadgen"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (cmake --build $BUILD_DIR)" >&2
    exit 2
  fi
done

if [[ "${WEDGE_SKIP_SOCKET_TESTS:-0}" == "1" ]]; then
  echo "obs_smoke: SKIPPED (WEDGE_SKIP_SOCKET_TESTS=1)"
  exit 0
fi

work="$(mktemp -d /tmp/wedge-obs-smoke-XXXXXX)"
declare -a daemon_pids=()
cleanup() {
  for pid in "${daemon_pids[@]:-}"; do
    kill -KILL "$pid" 2>/dev/null || true
  done
  if [[ "$KEEP" != "--keep" ]]; then rm -rf "$work"; fi
}
trap cleanup EXIT

# --- 1. Spawn the 2-daemon fleet.
declare -a ports=() admin_ports=()
for i in 0 1; do
  "$BUILD_DIR/tools/wedgeblockd" --port 0 --admin-port 0 --shards 1 --forest \
      --batch 16 --mine-ms 5 --no-verify-sigs \
      --telemetry-out "$work/daemon$i.jsonl" \
      >"$work/daemon$i.out" 2>"$work/daemon$i.err" &
  daemon_pids+=($!)
done
for i in 0 1; do
  for _ in $(seq 1 100); do
    port=$(awk '/^LISTENING /{print $2}' "$work/daemon$i.out" 2>/dev/null || true)
    admin=$(awk '/^ADMIN /{print $2}' "$work/daemon$i.out" 2>/dev/null || true)
    [[ -n "$port" && -n "$admin" ]] && break
    sleep 0.1
  done
  if [[ -z "${port:-}" || -z "${admin:-}" ]]; then
    echo "obs_smoke: daemon $i never printed LISTENING/ADMIN" >&2
    cat "$work/daemon$i.err" >&2 || true
    exit 1
  fi
  ports+=("$port"); admin_ports+=("$admin")
done
echo "obs_smoke: fleet up — rpc ${ports[*]}, admin ${admin_ports[*]}"

# --- 2. Traced fleet-mode load.
"$BUILD_DIR/bench/loadgen" \
    --fleet "127.0.0.1:${ports[0]},127.0.0.1:${ports[1]}" \
    --mode closed --duration-s 2 --threads 2 --connections 1 \
    --batch 8 --value-bytes 64 --tenants 4 --trace-every 1 --seed 7 \
    --telemetry-out "$work/client.jsonl" | tee "$work/loadgen.json"
acked_entries=$(python3 -c '
import json,sys
rows = [json.loads(l) for l in open(sys.argv[1]) if l.startswith("{")]
assert rows, "no JSONL row in loadgen output"
row = rows[-1]
if row.get("errors", 1) != 0:
    sys.exit("loadgen reported errors: %s" % row)
print(row["append_rpcs"] * row["batch_size"])' "$work/loadgen.json")
echo "obs_smoke: loadgen acked $acked_entries entries"

# --- 3. Admin endpoints serve all three formats on both daemons.
probe() { # host:port path
  python3 - "$1" "$2" <<'EOF'
import sys, urllib.request
url = "http://127.0.0.1:%s%s" % (sys.argv[1], sys.argv[2])
with urllib.request.urlopen(url, timeout=5) as r:
    sys.stdout.write(r.read().decode())
EOF
}
for admin in "${admin_ports[@]}"; do
  prom=$(probe "$admin" /metrics)
  grep -q '^wedge_rpc_requests [1-9]' <<<"$prom" \
    || { echo "obs_smoke: /metrics on $admin missing live samples" >&2; exit 1; }
  grep -q '^# TYPE wedge_rpc_append_us histogram' <<<"$prom" \
    || { echo "obs_smoke: /metrics on $admin missing histogram TYPE" >&2; exit 1; }
  probe "$admin" /metrics.json | grep -q '"kind": "counter"' \
    || { echo "obs_smoke: /metrics.json on $admin malformed" >&2; exit 1; }
  probe "$admin" /healthz | grep -q '"ready": true' \
    || { echo "obs_smoke: /healthz on $admin not ready" >&2; exit 1; }
done
echo "obs_smoke: admin endpoints OK on both daemons"

# --- 4. fleetmon merge equals loadgen ground truth.
"$BUILD_DIR/tools/fleetmon" \
    --targets "127.0.0.1:${admin_ports[0]},127.0.0.1:${admin_ports[1]}" \
    --rounds 1 --out "$work/fleetmon.jsonl"
python3 - "$work/fleetmon.jsonl" "$acked_entries" <<'EOF'
import json, sys
rows = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
merged = [r for r in rows if r.get("kind") == "fleetmon"]
assert merged, "no fleetmon merged row"
row = merged[-1]
assert row["up"] == 2, "expected both targets up: %s" % row
want = int(sys.argv[2])
got = row["entries_ingested"]
assert got == want, "merged entries_ingested %d != loadgen acked %d" % (got, want)
assert row["requests"] > 0 and row["append_p99_us"] >= row["append_p50_us"]
print("obs_smoke: fleetmon merged %d entries across 2 shards (skew %.3f)"
      % (got, row["skew_entries_ingested"]))
EOF

# --- 5. Cross-process trace stitching.
for pid in "${daemon_pids[@]}"; do kill -TERM "$pid"; done
for pid in "${daemon_pids[@]}"; do wait "$pid" || true; done
daemon_pids=()
python3 tools/trace_summary.py --traces \
    "$work/client.jsonl" "$work/daemon0.jsonl" "$work/daemon1.jsonl" \
    >"$work/traces.txt"
python3 - "$work/traces.txt" <<'EOF'
import re, sys
text = open(sys.argv[1]).read()
m = re.search(r"traces: (\d+)", text)
assert m and int(m.group(1)) >= 1, "no stitched traces"
# At least one trace must span two processes and show the full path.
blocks = text.split("\ntrace ")[1:]
ok = 0
for b in blocks:
    if "2 process(es)" not in b:
        continue
    path = next((l for l in b.splitlines() if l.strip().startswith("path:")), "")
    if all(s in path for s in ("client_enqueue", "router_pick", "rpc_recv",
                               "ingest", "client_acked")):
        ok += 1
assert ok >= 1, "no trace stitched client+daemon spans:\n" + text[:2000]
print("obs_smoke: %d cross-process trace(s) stitched end to end" % ok)
EOF

echo "obs_smoke: OK"
