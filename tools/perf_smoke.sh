#!/usr/bin/env bash
# Hot-path performance smoke test: builds the Release microbenchmarks,
# runs the sealing hot path (SHA-256 singles + batch, Merkle build,
# ECDSA sign/verify/recover singles + batch, full-batch seal) with the
# dispatched backends AND with every acceleration forced off
# (WEDGE_DISABLE_HWCRYPTO=1 WEDGE_DISABLE_ECPRECOMP=1), and writes
# BENCH_hotpath.json at the repo root with before/after rows against the
# recorded seed baselines.
#
# Exits non-zero when the tracked speedup criteria regress:
#   - BM_MerkleBuild/2000 >= 2.0x over seed with the dispatched backend
#   - BM_MerkleBuild/2000 >= 1.5x over seed with hardware crypto disabled
#   - BM_SealBatch/2000 >= 5.0x over seed with the dispatched backend
#     (the ISSUE 9 secp256k1 fast-path gate; stretch target is 10x)
#   - BM_EcdsaVerify >= 3.0x over seed with the dispatched backend
#
# Also runs the sharded-engine scaling bench (bench/shard_scaling), which
# writes BENCH_shard.json and enforces its own criteria: exactly one
# forest tx per epoch (always), and >= 2x 4-shard ingest speedup when the
# machine has >= 4 cores.
#
# Usage: tools/perf_smoke.sh [build_dir]   (default: build-perf)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-perf}"

echo "==> [perf] configuring $build_dir (Release)"
cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release >/dev/null
echo "==> [perf] building microbench + shard_scaling + obs_overhead + storage_sweep"
cmake --build "$build_dir" -j "$(nproc)" \
  --target microbench shard_scaling obs_overhead storage_sweep >/dev/null

filter='BM_Sha256/1088|BM_Sha256Many/2000|BM_MerkleBuild/2000|BM_MerkleBuildParallel/2000|BM_SealBatch/2000|BM_EcdsaSign$|BM_EcdsaVerify$|BM_EcdsaRecover$|BM_EcdsaSignMany/2000|BM_EcdsaVerifyMany/256'
tmp_dispatched="$(mktemp)"
tmp_scalar="$(mktemp)"
trap 'rm -f "$tmp_dispatched" "$tmp_scalar"' EXIT

echo "==> [perf] running hot-path benchmarks (dispatched backend)"
"$build_dir/bench/microbench" --benchmark_filter="$filter" \
  --benchmark_min_time=0.2 --benchmark_format=json >"$tmp_dispatched"

echo "==> [perf] running hot-path benchmarks (all accelerations forced off)"
WEDGE_DISABLE_HWCRYPTO=1 WEDGE_DISABLE_ECPRECOMP=1 "$build_dir/bench/microbench" \
  --benchmark_filter="$filter" --benchmark_min_time=0.2 \
  --benchmark_format=json >"$tmp_scalar"

python3 - "$tmp_dispatched" "$tmp_scalar" "$repo_root/BENCH_hotpath.json" <<'PY'
import json, sys

# Seed (pre-optimization) Release-build baselines, recorded before the
# dispatched backends / batch hashing / copy-free sealing landed. The
# ECDSA rows were measured immediately before the secp256k1 fast path
# (comb tables, GLV, batch inversion) replaced the generic 4-bit-window
# scalar multiplication.
SEED_NS = {
    "BM_Sha256/1088": 6114,
    "BM_MerkleBuild/2000": 14429974,
    "BM_SealBatch/2000": 317576157,
    "BM_EcdsaSign": 131076,
    "BM_EcdsaVerify": 400679,
    "BM_EcdsaRecover": 459626,
}
CRITERIA = [
    # (benchmark, run, minimum speedup over seed)
    ("BM_MerkleBuild/2000", "dispatched", 2.0),
    ("BM_MerkleBuild/2000", "scalar_forced", 1.5),
    ("BM_SealBatch/2000", "dispatched", 5.0),
    ("BM_EcdsaVerify", "dispatched", 3.0),
]

def rows(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        # Normalize to nanoseconds.
        unit = {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}[b["time_unit"]]
        out[b["name"]] = b["real_time"] * unit
    return out

dispatched = rows(sys.argv[1])
scalar = rows(sys.argv[2])

report = {"seed_baseline_ns": SEED_NS, "benchmarks": []}
for name in sorted(set(dispatched) | set(scalar)):
    row = {"name": name}
    if name in dispatched:
        row["dispatched_ns"] = round(dispatched[name])
    if name in scalar:
        row["scalar_forced_ns"] = round(scalar[name])
    if name in SEED_NS:
        row["seed_ns"] = SEED_NS[name]
        if name in dispatched:
            row["dispatched_speedup"] = round(SEED_NS[name] / dispatched[name], 2)
        if name in scalar:
            row["scalar_forced_speedup"] = round(SEED_NS[name] / scalar[name], 2)
    report["benchmarks"].append(row)

failures = []
for name, run, minimum in CRITERIA:
    measured = dispatched if run == "dispatched" else scalar
    if name not in measured:
        failures.append(f"{name} ({run}): benchmark missing from output")
        continue
    speedup = SEED_NS[name] / measured[name]
    status = "ok" if speedup >= minimum else "REGRESSED"
    print(f"    {name} [{run}]: {speedup:.2f}x over seed "
          f"(minimum {minimum:.1f}x) -> {status}")
    if speedup < minimum:
        failures.append(f"{name} ({run}): {speedup:.2f}x < {minimum:.1f}x")

report["criteria_passed"] = not failures
with open(sys.argv[3], "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"==> [perf] wrote {sys.argv[3]}")
if failures:
    print("==> [perf] FAILED: " + "; ".join(failures))
    sys.exit(1)
PY

echo "==> [perf] running sharded-engine scaling bench"
"$build_dir/bench/shard_scaling" --entries 40000 \
  --json-out "$repo_root/BENCH_shard.json"
echo "==> [perf] wrote $repo_root/BENCH_shard.json"

# Observability overhead: full tracing + a live admin scraper must cost
# < 3% append throughput versus the same run with both disabled.
echo "==> [perf] running observability overhead bench"
"$build_dir/bench/obs_overhead" --json-out "$repo_root/BENCH_obs.json"
echo "==> [perf] wrote $repo_root/BENCH_obs.json"

# Segmented-store durability sweep: group-commit must amortize syncs to
# >= 10x the per-append-fsync arm's durable throughput, and segment
# recovery must stay under the 2s-per-1M-entries bound (storage_sweep
# scales the bound to the entry count it actually ran; --quick keeps the
# smoke fast while a full multi-GB sweep can be run by hand with the
# same binary and no flags). Scratch lives under the build dir on a real
# filesystem so the fsync costs being measured are real.
echo "==> [perf] running storage durability sweep (quick)"
"$build_dir/bench/storage_sweep" --quick \
  --dir "$build_dir/storage-sweep-scratch" \
  --json-out "$repo_root/BENCH_storage.json"
echo "==> [perf] wrote $repo_root/BENCH_storage.json"

echo "==> [perf] OK"
