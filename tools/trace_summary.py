#!/usr/bin/env python3
"""Summarize WedgeBlock telemetry trace dumps.

Reads the JSON Lines produced by `--telemetry-out` (wedgeblock_sim, any
bench binary, or a SIGTERM'd wedgeblockd) and keeps the `span` records.
Accepts MULTIPLE dump files — e.g. the client dump from loadgen plus one
dump per fleet daemon — and two modes:

Table mode (default): groups spans by log position and prints the latency
of each lifecycle transition:

    ingest -> seal -> stage2_enqueued -> stage1_signed
      -> tx_submitted -> confirmed

plus counts of retry and fault annotations. Timestamps are simulated
microseconds (SimClock), so the table is deterministic for a given seed.

Trace mode (--traces): stitches cross-process traces into per-trace
timelines. Spans carrying the same nonzero trace_id are one trace no
matter which dump they came from (the id rides the RPC frame); spans a
process emitted asynchronously without the trace context (signing
fan-out, epoch aggregation) are joined in via the (file, log_id) binding
established by that process's traced spans. Because each process runs
its own clock domain, offsets are printed RELATIVE to the first event of
the trace in that same file — never across files.

Usage:
    tools/trace_summary.py run.jsonl
    tools/trace_summary.py --traces client.jsonl shard0.jsonl shard1.jsonl
    wedgeblock_sim --telemetry-out /dev/stdout | tools/trace_summary.py -

Stdlib only; no third-party dependencies.
"""

import json
import sys
from collections import defaultdict

# Lifecycle stages in pipeline order (see src/telemetry/tracer.h). The
# digest is journaled for stage 2 when the position seals, before the
# signing fan-out completes, hence stage2_enqueued before stage1_signed.
LIFECYCLE = [
    "ingest",
    "seal",
    "stage2_enqueued",
    "stage1_signed",
    "tx_submitted",
    "confirmed",
]
ANNOTATIONS = ["tx_retry", "fault"]

# Stages that only ever carry a trace context (no log_id binding needed).
CLIENT_STAGES = {"client_enqueue", "client_acked", "router_pick"}


def percentile(sorted_values, q):
    """Nearest-rank percentile of a pre-sorted non-empty list."""
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[idx]


def load_spans(stream, label):
    spans = []
    for line in stream:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # Metrics lines / prose are fine to skip.
        if record.get("kind") == "span":
            record["file"] = label
            spans.append(record)
    return spans


def summarize(spans):
    # First occurrence of each lifecycle stage per (process, log
    # position) — log ids are process-local, so dumps from different
    # processes must not collide — plus the LAST tx_submitted (the
    # attempt that actually confirmed).
    first = defaultdict(dict)
    last_submit = {}
    annotation_counts = defaultdict(int)
    for span in spans:
        stage = span["stage"]
        key = (span["file"], span.get("log_id", 0))
        t = span.get("t_us", 0)
        if stage in ANNOTATIONS:
            annotation_counts[stage] += 1
            continue
        if stage == "tx_submitted":
            last_submit[key] = max(last_submit.get(key, 0), t)
        if stage not in first[key]:
            first[key][stage] = t

    transitions = []
    for a, b in zip(LIFECYCLE, LIFECYCLE[1:]):
        deltas = []
        for key, stages in first.items():
            src = stages.get(a)
            # Confirmation lag is measured from the attempt that landed,
            # not the first (possibly dropped) one.
            if a == "tx_submitted" and key in last_submit:
                src = last_submit[key]
            dst = stages.get(b)
            if src is not None and dst is not None and dst >= src:
                deltas.append(dst - src)
        transitions.append((a, b, sorted(deltas)))

    end_to_end = sorted(
        stages["confirmed"] - stages["ingest"]
        for stages in first.values()
        if "ingest" in stages and "confirmed" in stages
    )
    return first, transitions, end_to_end, annotation_counts


def print_table(first, transitions, end_to_end, annotation_counts):
    confirmed = sum(1 for s in first.values() if "confirmed" in s)
    print(f"log positions traced: {len(first)}  (confirmed: {confirmed})")
    print(f"retries: {annotation_counts['tx_retry']}  "
          f"faults: {annotation_counts['fault']}")
    print()
    header = (f"{'transition':<34} {'count':>6} {'p50_us':>10} "
              f"{'p95_us':>10} {'p99_us':>10} {'max_us':>12}")
    print(header)
    print("-" * len(header))
    rows = [(f"{a} -> {b}", deltas) for a, b, deltas in transitions]
    rows.append(("ingest -> confirmed (end-to-end)", end_to_end))
    for label, deltas in rows:
        if not deltas:
            print(f"{label:<34} {0:>6} {'-':>10} {'-':>10} {'-':>10} {'-':>12}")
            continue
        print(f"{label:<34} {len(deltas):>6} "
              f"{percentile(deltas, 0.50):>10} "
              f"{percentile(deltas, 0.95):>10} "
              f"{percentile(deltas, 0.99):>10} "
              f"{deltas[-1]:>12}")


def collect_traces(spans):
    """trace_id -> list of spans, including the untraced async spans a
    process emitted for a log position its traced spans bound."""
    traces = defaultdict(list)
    # (file, log_id) -> trace_id bindings from traced server-side spans.
    bindings = {}
    for span in spans:
        tid = span.get("trace_id", 0)
        if tid:
            traces[tid].append(span)
            log_id = span.get("log_id", 0)
            if log_id and span["stage"] not in CLIENT_STAGES:
                bindings.setdefault((span["file"], log_id), tid)
    for span in spans:
        if span.get("trace_id", 0):
            continue
        tid = bindings.get((span["file"], span.get("log_id", 0)))
        if tid is not None:
            traces[tid].append(span)
    return traces


def print_traces(spans):
    traces = collect_traces(spans)
    if not traces:
        print("no traced spans found (client ran without --trace-every, "
              "or dumps predate trace propagation)", file=sys.stderr)
        return 1
    print(f"traces: {len(traces)}")
    for tid in sorted(traces):
        events = traces[tid]
        by_file = defaultdict(list)
        origin = ""
        for span in events:
            by_file[span["file"]].append(span)
            origin = origin or span.get("origin", "")
        stages = {s["stage"] for s in events}
        end_to_end = " -> ".join(s for s in (
            "client_enqueue", "router_pick", "rpc_recv", "ingest", "seal",
            "stage1_signed", "client_acked", "agg_epoch", "agg_confirmed",
            "confirmed") if s in stages)
        print()
        print(f"trace {tid:#x} (origin {origin or '?'}, "
              f"{len(by_file)} process(es), {len(events)} spans)")
        print(f"  path: {end_to_end}")
        for label in sorted(by_file):
            file_events = sorted(
                by_file[label], key=lambda s: (s.get("t_us", 0), s.get("seq", 0)))
            # Offsets are per-process: each dump has its own clock domain
            # (SimClock in the daemons, wall micros in the client).
            t0 = file_events[0].get("t_us", 0)
            print(f"  [{label}]")
            for span in file_events:
                dt = span.get("t_us", 0) - t0
                note = span.get("note", "")
                log_id = span.get("log_id", 0)
                detail = " ".join(x for x in (
                    f"log={log_id}" if log_id else "", note) if x)
                joined = "" if span.get("trace_id", 0) else "  (joined by log)"
                print(f"    +{dt:>8}us  {span['stage']:<16} {detail}{joined}")
    return 0


def main(argv):
    args = [a for a in argv[1:] if a not in ("-h", "--help")]
    if len(args) != len(argv) - 1 or not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    trace_mode = "--traces" in args
    paths = [a for a in args if a != "--traces"]
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    spans = []
    for path in paths:
        if path == "-":
            spans.extend(load_spans(sys.stdin, "stdin"))
        else:
            with open(path, "r", encoding="utf-8") as f:
                spans.extend(load_spans(f, path.rsplit("/", 1)[-1]))
    if not spans:
        print("no span records found (is this a --telemetry-out dump?)",
              file=sys.stderr)
        return 1
    if trace_mode:
        return print_traces(spans)
    print_table(*summarize(spans))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
