#!/usr/bin/env python3
"""Summarize a WedgeBlock telemetry trace dump as a per-stage latency table.

Reads the JSON Lines produced by `--telemetry-out` (wedgeblock_sim or any
bench binary), keeps the `span` records, groups them by log position, and
prints the latency of each lifecycle transition:

    ingest -> seal -> stage2_enqueued -> stage1_signed
      -> tx_submitted -> confirmed

plus counts of retry and fault annotations. Timestamps are simulated
microseconds (SimClock), so the table is deterministic for a given seed.

Usage:
    tools/trace_summary.py run.jsonl
    wedgeblock_sim --telemetry-out /dev/stdout | tools/trace_summary.py -

Stdlib only; no third-party dependencies.
"""

import json
import sys
from collections import defaultdict

# Lifecycle stages in pipeline order (see src/telemetry/tracer.h). The
# digest is journaled for stage 2 when the position seals, before the
# signing fan-out completes, hence stage2_enqueued before stage1_signed.
LIFECYCLE = [
    "ingest",
    "seal",
    "stage2_enqueued",
    "stage1_signed",
    "tx_submitted",
    "confirmed",
]
ANNOTATIONS = ["tx_retry", "fault"]


def percentile(sorted_values, q):
    """Nearest-rank percentile of a pre-sorted non-empty list."""
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[idx]


def load_spans(stream):
    spans = []
    for line in stream:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # Metrics lines / prose are fine to skip.
        if record.get("kind") == "span":
            spans.append(record)
    return spans


def summarize(spans):
    # First occurrence of each lifecycle stage per log position, plus the
    # LAST tx_submitted (the attempt that actually confirmed).
    first = defaultdict(dict)
    last_submit = {}
    annotation_counts = defaultdict(int)
    for span in spans:
        stage = span["stage"]
        log_id = span.get("log_id", 0)
        t = span.get("t_us", 0)
        if stage in ANNOTATIONS:
            annotation_counts[stage] += 1
            continue
        if stage == "tx_submitted":
            last_submit[log_id] = max(last_submit.get(log_id, 0), t)
        if stage not in first[log_id]:
            first[log_id][stage] = t

    transitions = []
    for a, b in zip(LIFECYCLE, LIFECYCLE[1:]):
        deltas = []
        for log_id, stages in first.items():
            src = stages.get(a)
            # Confirmation lag is measured from the attempt that landed,
            # not the first (possibly dropped) one.
            if a == "tx_submitted" and log_id in last_submit:
                src = last_submit[log_id]
            dst = stages.get(b)
            if src is not None and dst is not None and dst >= src:
                deltas.append(dst - src)
        transitions.append((a, b, sorted(deltas)))

    end_to_end = sorted(
        stages["confirmed"] - stages["ingest"]
        for stages in first.values()
        if "ingest" in stages and "confirmed" in stages
    )
    return first, transitions, end_to_end, annotation_counts


def print_table(first, transitions, end_to_end, annotation_counts):
    confirmed = sum(1 for s in first.values() if "confirmed" in s)
    print(f"log positions traced: {len(first)}  (confirmed: {confirmed})")
    print(f"retries: {annotation_counts['tx_retry']}  "
          f"faults: {annotation_counts['fault']}")
    print()
    header = (f"{'transition':<34} {'count':>6} {'p50_us':>10} "
              f"{'p95_us':>10} {'p99_us':>10} {'max_us':>12}")
    print(header)
    print("-" * len(header))
    rows = [(f"{a} -> {b}", deltas) for a, b, deltas in transitions]
    rows.append(("ingest -> confirmed (end-to-end)", end_to_end))
    for label, deltas in rows:
        if not deltas:
            print(f"{label:<34} {0:>6} {'-':>10} {'-':>10} {'-':>10} {'-':>12}")
            continue
        print(f"{label:<34} {len(deltas):>6} "
              f"{percentile(deltas, 0.50):>10} "
              f"{percentile(deltas, 0.95):>10} "
              f"{percentile(deltas, 0.99):>10} "
              f"{deltas[-1]:>12}")


def main(argv):
    if len(argv) != 2 or argv[1] in ("-h", "--help"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    if argv[1] == "-":
        spans = load_spans(sys.stdin)
    else:
        with open(argv[1], "r", encoding="utf-8") as f:
            spans = load_spans(f)
    if not spans:
        print("no span records found (is this a --telemetry-out dump?)",
              file=sys.stderr)
        return 1
    print_table(*summarize(spans))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
