// wedgeblock_sim — end-to-end WedgeBlock simulation driver.
//
// Runs a configurable workload through a fresh deployment (simulated
// chain + contracts + Offchain Node), optionally with a byzantine node,
// then audits and reports performance, on-chain cost, and punishment
// outcomes. The quickest way to poke at the system without writing code.
//
// Usage:
//   wedgeblock_sim [--ops N] [--batch N] [--value-bytes N]
//                  [--byzantine honest|equivocate|tamper-reads|omit-stage2|
//                               corrupt-proof]
//                  [--gas-gwei N] [--block-seconds N] [--replicas N]
//                  [--audit-samples N] [--seed N] [--telemetry-out PATH]
//
// Examples:
//   wedgeblock_sim --ops 4000 --batch 2000
//   wedgeblock_sim --byzantine equivocate          # watch the punishment
//   wedgeblock_sim --ops 10000 --audit-samples 16  # sampled audit
//   wedgeblock_sim --telemetry-out run.jsonl       # metrics + trace dump
//
// --telemetry-out writes the run's metrics registry and the per-entry
// lifecycle trace as JSON Lines (or Prometheus text when PATH ends in
// ".prom"). Feed the JSONL to tools/trace_summary.py for a per-stage
// latency table.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/economics.h"
#include "core/wedgeblock.h"
#include "telemetry/export.h"

namespace wedge {
namespace {

struct Options {
  uint64_t ops = 2000;
  uint32_t batch = 500;
  size_t value_bytes = 1024;
  ByzantineMode byzantine = ByzantineMode::kHonest;
  uint64_t gas_gwei = 100;
  int64_t block_seconds = 13;
  int replicas = 0;
  uint32_t audit_samples = 0;  // 0 = full audit.
  uint64_t seed = 42;
  std::string telemetry_out;  // Empty = no telemetry dump.
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--ops N] [--batch N] [--value-bytes N]\n"
               "          [--byzantine honest|equivocate|tamper-reads|"
               "omit-stage2|corrupt-proof]\n"
               "          [--gas-gwei N] [--block-seconds N] [--replicas N]\n"
               "          [--audit-samples N] [--seed N] "
               "[--telemetry-out PATH]\n",
               argv0);
  return 2;
}

Result<Options> Parse(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument(flag + " needs a value");
      }
      return std::string(argv[++i]);
    };
    if (flag == "--ops") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.ops = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--batch") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.batch = static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (flag == "--value-bytes") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.value_bytes = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--byzantine") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      if (v == "honest") {
        opts.byzantine = ByzantineMode::kHonest;
      } else if (v == "equivocate") {
        opts.byzantine = ByzantineMode::kEquivocateRoot;
      } else if (v == "tamper-reads") {
        opts.byzantine = ByzantineMode::kTamperReadData;
      } else if (v == "omit-stage2") {
        opts.byzantine = ByzantineMode::kOmitStage2;
      } else if (v == "corrupt-proof") {
        opts.byzantine = ByzantineMode::kCorruptProof;
      } else {
        return Status::InvalidArgument("unknown byzantine mode: " + v);
      }
    } else if (flag == "--gas-gwei") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.gas_gwei = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--block-seconds") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.block_seconds = std::strtoll(v.c_str(), nullptr, 10);
    } else if (flag == "--replicas") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.replicas = std::atoi(v.c_str());
    } else if (flag == "--audit-samples") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.audit_samples =
          static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (flag == "--seed") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--telemetry-out") {
      WEDGE_ASSIGN_OR_RETURN(opts.telemetry_out, next());
    } else {
      return Status::InvalidArgument("unknown flag: " + flag);
    }
  }
  if (opts.ops == 0 || opts.batch == 0 || opts.block_seconds <= 0) {
    return Status::InvalidArgument("ops/batch/block-seconds must be positive");
  }
  return opts;
}

const char* ModeName(ByzantineMode mode) {
  switch (mode) {
    case ByzantineMode::kHonest:
      return "honest";
    case ByzantineMode::kEquivocateRoot:
      return "equivocate-root";
    case ByzantineMode::kTamperReadData:
      return "tamper-reads";
    case ByzantineMode::kOmitStage2:
      return "omit-stage2";
    case ByzantineMode::kCorruptProof:
      return "corrupt-proof";
  }
  return "?";
}

int Run(const Options& opts) {
  DeploymentConfig config;
  config.node.batch_size = opts.batch;
  config.node.byzantine_mode = opts.byzantine;
  config.chain.gas_price = GweiToWei(opts.gas_gwei);
  config.chain.block_interval_seconds = opts.block_seconds;
  config.replication_followers = opts.replicas;
  config.offchain_funding = EthToWei(1'000'000);
  config.client_funding = EthToWei(1'000'000);
  auto deployment = Deployment::Create(config);
  if (!deployment.ok()) {
    std::fprintf(stderr, "deployment failed: %s\n",
                 deployment.status().ToString().c_str());
    return 1;
  }
  Deployment& d = **deployment;

  std::printf("wedgeblock_sim: %llu ops, batch %u, %zu-byte values, "
              "node=%s, %d replicas\n",
              static_cast<unsigned long long>(opts.ops), opts.batch,
              opts.value_bytes, ModeName(opts.byzantine), opts.replicas);
  std::printf("contracts: root-record %s, punishment %s (escrow %s ETH)\n",
              d.root_record_address().ToHex().c_str(),
              d.punishment_address().ToHex().c_str(),
              WeiToEthString(d.chain().BalanceOf(d.punishment_address()))
                  .c_str());

  // --- Workload.
  Rng rng(opts.seed);
  std::vector<std::pair<Bytes, Bytes>> kvs;
  kvs.reserve(opts.ops);
  for (uint64_t i = 0; i < opts.ops; ++i) {
    kvs.emplace_back(rng.NextBytes(64), rng.NextBytes(opts.value_bytes));
  }
  PublisherClient& publisher = d.publisher();
  auto requests = publisher.MakeRequests(kvs);

  // --- Stage 1.
  Wei fees_before = d.chain().TotalFeesPaid(d.node().address());
  Stopwatch sw(RealClock::Global());
  auto responses = d.node().Append(requests);
  double stage1_secs = sw.ElapsedSeconds();
  if (!responses.ok()) {
    std::fprintf(stderr, "append failed: %s\n",
                 responses.status().ToString().c_str());
    return 1;
  }
  double mb = static_cast<double>(opts.ops) * (64 + opts.value_bytes) /
              (1024.0 * 1024.0);
  std::printf("\nstage 1: %zu responses in %.2f s  (%.0f ops/s, %.2f MB/s)\n",
              responses->size(), stage1_secs, opts.ops / stage1_secs,
              mb / stage1_secs);

  // Client-side verification of a sample.
  size_t verify_n = std::min<size_t>(responses->size(), 64);
  size_t verified = 0;
  for (size_t i = 0; i < verify_n; ++i) {
    verified += (*responses)[i].Verify(d.node().address()) ? 1 : 0;
  }
  std::printf("stage-1 verification sample: %zu/%zu valid\n", verified,
              verify_n);

  // --- Stage 2.
  Micros sim_before = d.clock().NowMicros();
  d.AdvanceBlocks(d.chain().config().confirmations + 2);
  double stage2_secs =
      static_cast<double>(d.clock().NowMicros() - sim_before) /
      kMicrosPerSecond;
  auto check = publisher.CheckBlockchainCommit(responses->front());
  const char* check_str = "?";
  if (check.ok()) {
    switch (check.value()) {
      case CommitCheck::kBlockchainCommitted:
        check_str = "blockchain committed";
        break;
      case CommitCheck::kNotYetCommitted:
        check_str = "NOT committed (omission?)";
        break;
      case CommitCheck::kMismatch:
        check_str = "MISMATCH (equivocation!)";
        break;
      case CommitCheck::kOmissionSuspected:
        check_str = "NOT committed (omission suspected)";
        break;
    }
  }
  Wei stage2_fees = d.chain().TotalFeesPaid(d.node().address()) - fees_before;
  std::printf("\nstage 2: %s after %.0f s of chain time; node paid %s ETH "
              "(%.3e ETH/op)\n",
              check_str, stage2_secs, WeiToEthString(stage2_fees).c_str(),
              WeiToEthDouble(stage2_fees) / opts.ops);

  // --- Audit.
  AuditorClient auditor = d.MakeAuditor(opts.seed ^ 0xA0D17);
  uint64_t last = d.node().LogPositions() - 1;
  Result<AuditReport> report =
      opts.audit_samples == 0
          ? auditor.AuditFast(0, last)
          : auditor.AuditSample(0, last, opts.audit_samples, opts.seed);
  if (!report.ok()) {
    std::fprintf(stderr, "audit failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("\naudit (%s): %llu entries, %llu stage-1 failures, %llu "
              "on-chain mismatches, %llu uncommitted\n",
              opts.audit_samples == 0 ? "full, batched"
                                      : "sampled",
              static_cast<unsigned long long>(report->entries_checked),
              static_cast<unsigned long long>(report->stage1_failures),
              static_cast<unsigned long long>(report->onchain_mismatches),
              static_cast<unsigned long long>(report->not_yet_committed));

  // --- Punishment, if the audit found anything actionable.
  if (!report->Clean() || report->not_yet_committed > 0) {
    std::printf("\nmisbehaviour detected -> invoking the Punishment "
                "contract with the signed stage-1 response...\n");
    if (report->not_yet_committed > 0) {
      // Omission path: file the claim and wait out the grace period.
      auto claim = publisher.FileOmissionClaim(0);
      if (claim.ok() && claim->success) {
        std::printf("omission claim filed for position 0; waiting out the "
                    "grace period...\n");
        d.clock().AdvanceSeconds(601);
        d.chain().PumpUntilNow();
      }
    }
    auto receipt = publisher.TriggerPunishment(responses->front());
    if (receipt.ok() && receipt->success) {
      std::printf("punishment SUCCEEDED: escrow seized (gas %llu); "
                  "punishment contract balance now %s ETH\n",
                  static_cast<unsigned long long>(receipt->gas_used),
                  WeiToEthString(
                      d.chain().BalanceOf(d.punishment_address()))
                      .c_str());
    } else {
      std::printf("punishment attempt did not succeed (%s)\n",
                  receipt.ok() ? receipt->revert_reason.c_str()
                               : receipt.status().ToString().c_str());
    }
  } else {
    std::printf("\nlog is clean; no punishment warranted\n");
  }

  if (!opts.telemetry_out.empty()) {
    Status wrote = WriteTelemetryFile(opts.telemetry_out, d.telemetry());
    if (!wrote.ok()) {
      std::fprintf(stderr, "telemetry write failed: %s\n",
                   wrote.ToString().c_str());
      return 1;
    }
    std::printf("\ntelemetry written to %s\n", opts.telemetry_out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace wedge

int main(int argc, char** argv) {
  auto opts = wedge::Parse(argc, argv);
  if (!opts.ok()) {
    std::fprintf(stderr, "%s\n", opts.status().ToString().c_str());
    return wedge::Usage(argv[0]);
  }
  return wedge::Run(opts.value());
}
