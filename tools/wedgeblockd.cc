// wedgeblockd — the WedgeBlock Offchain Node as a network daemon.
//
// Stands up a full deployment (simulated chain + contracts + Offchain
// Node) and serves the stage-1 append/read RPC surface over real TCP via
// rpc/RpcServer, the way the paper ran it across machines (§5). Clients
// connect with rpc/TcpNodeClient (see bench/loadgen and
// examples/remote_quickstart).
//
// Usage:
//   wedgeblockd [--port N] [--bind ADDR] [--workers N] [--batch N]
//               [--node-threads N] [--max-frame-mb N] [--no-verify-sigs]
//               [--mine-ms N] [--duration-s N] [--telemetry-out PATH]
//               [--shards N] [--tenants N] [--epoch-blocks N]
//               [--tenant-rate N] [--tenant-burst N] [--tenant-inflight N]
//               [--tenant-auth] [--forest] [--log-dir PATH] [--fsync]
//               [--store memory|file|segment] [--recover]
//
//   --port 0 (default) picks an ephemeral port; the daemon prints
//   "LISTENING <port>" on stdout either way, so scripts can scrape it.
//   --mine-ms advances the simulated chain one block every N real
//   milliseconds (0 disables mining; stage-2 then never confirms).
//   --duration-s exits after N seconds (0 = run until SIGINT/SIGTERM).
//   On shutdown the server drains in-flight replies, then the telemetry
//   registry (wedge.rpc.* + wedge.node.* + chain metrics) is dumped to
//   --telemetry-out when given.
//
//   --shards N runs the sharded multi-tenant engine (shard/) instead of
//   a bare OffchainNode: N shards behind the consistent-hash tenant
//   router, per-tenant admission quotas, and — for N > 1 — one epoch
//   forest root on chain per --epoch-blocks blocks instead of a stage-2
//   tx stream per shard. Shard clients use the tenant-scoped ops
//   (TcpNodeClient::AppendForTenant et al.); the legacy ops keep working
//   as tenant 0. --tenants caps the number of distinct tenants admitted
//   (0 = unlimited); --tenant-rate/--tenant-burst/--tenant-inflight set
//   the per-tenant token-bucket append quota (0 = unlimited). Quota
//   rejections surface to clients as typed ResourceExhausted errors.
//   --tenant-auth requires every append's tenant id to match the id
//   derived from its publisher key (PublisherTenant), so quotas bind to
//   authenticated identities; without it the wire tenant id is trusted
//   and quotas assume cooperative clients. Incompatible with
//   --no-verify-sigs.
//
//   Crash-resilience flags (sharded mode; see DESIGN.md "Sharded failure
//   model & recovery"):
//   --forest forces the epoch forest-root pipeline even at --shards 1,
//   so a fleet of single-shard processes (tools/chaos) gets the same
//   journal + recovery machinery a multi-shard engine does.
//   --log-dir PATH puts every shard log at PATH/shard-<i>.log and — in
//   forest mode — the aggregator journal at PATH/aggregator.journal, so
//   a SIGKILL'd daemon can be restarted over the same directory.
//   --store picks the shard store implementation under --log-dir:
//   "file" (default) is the flat append-only FileLogStore; "segment" is
//   the segmented engine (storage/segstore/) — group-committed WAL +
//   sealed immutable segments at PATH/shard-<i>.seg/ with O(segments)
//   recovery and tenant GC; "memory" ignores --log-dir entirely.
//   --fsync makes acks durable: per-record fsync on the file backend,
//   coalesced group commit (one fdatasync per batch window) on segment.
//   --recover replays the journal, reconciles shard tails and the chain,
//   and resubmits unconfirmed epochs before serving; the daemon prints
//   "RECOVERED journaled=N restaged=N closed=N resubmitted=N confirmed=N"
//   for scripts to scrape. Recovery on a fresh --log-dir is a no-op, so
//   restart scripts can pass it unconditionally.

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/wedgeblock.h"
#include "rpc/admin_http.h"
#include "rpc/rpc_server.h"
#include "shard/shard_rpc.h"
#include "shard/sharded_engine.h"
#include "telemetry/export.h"

namespace wedge {
namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

struct Options {
  uint16_t port = 0;
  std::string bind = "127.0.0.1";
  int workers = 2;
  uint32_t batch = 500;
  size_t node_threads = 4;
  size_t max_frame_mb = 32;
  bool verify_sigs = true;
  int64_t mine_ms = 200;
  int64_t duration_s = 0;
  std::string telemetry_out;
  /// 0 = classic single-node daemon; >= 1 = sharded engine.
  uint32_t shards = 0;
  uint64_t tenants = 0;          ///< Max distinct tenants (0 = unlimited).
  uint32_t epoch_blocks = 4;     ///< Blocks per aggregation epoch.
  uint64_t tenant_rate = 0;      ///< Entries/second per tenant (0 = off).
  uint64_t tenant_burst = 0;     ///< Token-bucket burst (0 = 2x rate).
  uint64_t tenant_inflight = 0;  ///< In-flight appends per tenant (0 = off).
  bool tenant_auth = false;      ///< Bind tenant ids to publisher keys.
  bool forest = false;           ///< Force forest stage-2 at any shard count.
  std::string log_dir;           ///< Durable shard logs + aggregator journal.
  StoreBackend store = StoreBackend::kFile;  ///< Shard store implementation.
  uint64_t segment_positions = 0;  ///< Segment seal threshold (0 = default).
  bool fsync = false;            ///< Durable acks (see --store above).
  bool recover = false;          ///< Run engine recovery before serving.
  /// Admin HTTP port: -1 disables the endpoint, 0 picks an ephemeral
  /// port. The daemon prints "ADMIN <port>" when enabled.
  int admin_port = -1;
  int64_t slow_request_ms = 0;   ///< Slow-request log threshold (0 = off).
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--bind ADDR] [--workers N] [--batch N]\n"
               "          [--node-threads N] [--max-frame-mb N] "
               "[--no-verify-sigs]\n"
               "          [--mine-ms N] [--duration-s N] "
               "[--telemetry-out PATH]\n"
               "          [--shards N] [--tenants N] [--epoch-blocks N]\n"
               "          [--tenant-rate N] [--tenant-burst N] "
               "[--tenant-inflight N] [--tenant-auth]\n"
               "          [--forest] [--log-dir PATH] "
               "[--store memory|file|segment] [--segment-positions N]\n"
               "          [--fsync] [--recover]\n"
               "          [--admin-port N] [--slow-request-ms N]\n",
               argv0);
  return 2;
}

Result<Options> Parse(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument(flag + " needs a value");
      }
      return std::string(argv[++i]);
    };
    if (flag == "--port") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.port = static_cast<uint16_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (flag == "--bind") {
      WEDGE_ASSIGN_OR_RETURN(opts.bind, next());
    } else if (flag == "--workers") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.workers = std::atoi(v.c_str());
    } else if (flag == "--batch") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.batch = static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (flag == "--node-threads") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.node_threads = std::strtoul(v.c_str(), nullptr, 10);
    } else if (flag == "--max-frame-mb") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.max_frame_mb = std::strtoul(v.c_str(), nullptr, 10);
    } else if (flag == "--no-verify-sigs") {
      opts.verify_sigs = false;
    } else if (flag == "--mine-ms") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.mine_ms = std::atoll(v.c_str());
    } else if (flag == "--duration-s") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.duration_s = std::atoll(v.c_str());
    } else if (flag == "--telemetry-out") {
      WEDGE_ASSIGN_OR_RETURN(opts.telemetry_out, next());
    } else if (flag == "--shards") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.shards = static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
      if (opts.shards == 0) {
        return Status::InvalidArgument("--shards needs a value >= 1");
      }
    } else if (flag == "--tenants") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.tenants = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--epoch-blocks") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.epoch_blocks =
          static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (flag == "--tenant-rate") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.tenant_rate = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--tenant-burst") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.tenant_burst = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--tenant-inflight") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.tenant_inflight = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--tenant-auth") {
      opts.tenant_auth = true;
    } else if (flag == "--forest") {
      opts.forest = true;
    } else if (flag == "--log-dir") {
      WEDGE_ASSIGN_OR_RETURN(opts.log_dir, next());
    } else if (flag == "--store") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      WEDGE_ASSIGN_OR_RETURN(opts.store, ParseStoreBackend(v));
    } else if (flag == "--segment-positions") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.segment_positions = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--fsync") {
      opts.fsync = true;
    } else if (flag == "--recover") {
      opts.recover = true;
    } else if (flag == "--admin-port") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.admin_port = std::atoi(v.c_str());
      if (opts.admin_port < 0 || opts.admin_port > 65535) {
        return Status::InvalidArgument("--admin-port needs 0..65535");
      }
    } else if (flag == "--slow-request-ms") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.slow_request_ms = std::atoll(v.c_str());
    } else {
      return Status::InvalidArgument("unknown flag " + flag);
    }
  }
  if (opts.batch == 0 || opts.workers < 1 || opts.max_frame_mb == 0 ||
      opts.epoch_blocks == 0) {
    return Status::InvalidArgument("bad flag value");
  }
  return opts;
}

/// Closed-but-unconfirmed forest epochs the daemon tolerates before
/// /healthz reports the aggregator wedged. One or two in flight is the
/// normal pipeline; a backlog this deep means confirmations stopped.
constexpr uint64_t kWedgedUnconfirmedEpochs = 3;

/// Starts the admin HTTP endpoint when --admin-port was given and prints
/// "ADMIN <port>" for scripts to scrape (mirroring "LISTENING <port>").
std::unique_ptr<AdminHttpServer> StartAdmin(const Options& opts,
                                            Telemetry* telemetry,
                                            AdminHttpServer::HealthFn health) {
  if (opts.admin_port < 0) return nullptr;
  AdminHttpConfig config;
  config.bind_address = opts.bind;
  config.port = static_cast<uint16_t>(opts.admin_port);
  auto admin = std::make_unique<AdminHttpServer>(telemetry, config,
                                                 std::move(health));
  Status started = admin->Start();
  if (!started.ok()) {
    std::fprintf(stderr, "admin endpoint failed: %s\n",
                 started.ToString().c_str());
    return nullptr;
  }
  std::printf("ADMIN %u\n", admin->port());
  std::fflush(stdout);
  return admin;
}

/// Blocks until SIGINT/SIGTERM or --duration-s, advancing the simulated
/// chain one block per --mine-ms via `advance`.
template <typename AdvanceFn>
void ServeLoop(const Options& opts, AdvanceFn advance) {
  struct sigaction sa{};
  sa.sa_handler = HandleSignal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  Micros started_at = RealClock::Global()->NowMicros();
  Micros last_mine = started_at;
  while (!g_stop.load()) {
    usleep(20 * 1000);
    Micros now = RealClock::Global()->NowMicros();
    if (opts.mine_ms > 0 && now - last_mine >= opts.mine_ms * 1000) {
      // One simulated block per interval: confirms pending stage-2 /
      // forest submissions and drives the retry pipeline.
      advance();
      last_mine = now;
    }
    if (opts.duration_s > 0 &&
        now - started_at >= opts.duration_s * kMicrosPerSecond) {
      break;
    }
  }
}

int RunSharded(const Options& opts) {
  ShardedDeploymentConfig config;
  config.engine.num_shards = opts.shards;
  config.engine.node.batch_size = opts.batch;
  config.engine.node.worker_threads = opts.node_threads;
  config.engine.node.verify_client_signatures = opts.verify_sigs;
  config.engine.epoch_ticks = opts.epoch_blocks;
  // A single shard keeps the classic per-batch stage-2 stream (the
  // degenerate configuration, byte-identical to the bare node); two or
  // more shards aggregate into one forest root per epoch. --forest opts
  // a single-shard process into the forest pipeline anyway, which is how
  // a chaos fleet of one-shard daemons gets journaled recovery.
  config.engine.forest_stage2 = opts.shards > 1 || opts.forest;
  config.engine.quota.entries_per_second = opts.tenant_rate;
  config.engine.quota.burst_entries = opts.tenant_burst;
  config.engine.quota.max_inflight_appends = opts.tenant_inflight;
  config.engine.quota.max_tenants = opts.tenants;
  config.engine.authenticate_tenants = opts.tenant_auth;
  config.log_dir = opts.log_dir;
  config.store_backend =
      opts.store == StoreBackend::kMemory ? StoreBackend::kFile : opts.store;
  if (opts.store == StoreBackend::kMemory) config.log_dir.clear();
  config.store_segment_positions = opts.segment_positions;
  config.log_fsync = opts.fsync;
  auto deployment = ShardedDeployment::Create(config);
  if (!deployment.ok()) {
    std::fprintf(stderr, "sharded deployment failed: %s\n",
                 deployment.status().ToString().c_str());
    return 1;
  }
  ShardedDeployment& d = **deployment;

  if (opts.recover) {
    auto report = d.engine().Recover();
    if (!report.ok()) {
      std::fprintf(stderr, "recovery failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("RECOVERED journaled=%llu restaged=%llu closed=%llu "
                "resubmitted=%llu confirmed=%llu segments=%llu "
                "wal_tail=%llu wal_torn_bytes=%llu tmp_removed=%llu\n",
                static_cast<unsigned long long>(report->journaled_epochs),
                static_cast<unsigned long long>(report->restaged_roots),
                static_cast<unsigned long long>(report->recovered_epochs),
                static_cast<unsigned long long>(report->resubmitted_epochs),
                static_cast<unsigned long long>(report->confirmed_epochs),
                static_cast<unsigned long long>(report->store_segments),
                static_cast<unsigned long long>(report->store_wal_positions),
                static_cast<unsigned long long>(
                    report->store_wal_truncated_bytes),
                static_cast<unsigned long long>(
                    report->store_tmp_files_removed));
    std::fflush(stdout);
  }

  RpcServerConfig server_config;
  server_config.bind_address = opts.bind;
  server_config.port = opts.port;
  server_config.num_workers = opts.workers;
  server_config.max_frame_bytes = opts.max_frame_mb << 20;
  server_config.slow_request_micros = opts.slow_request_ms * kMicrosPerMilli;
  KeyPair transport_key = KeyPair::FromSeed(config.engine_key_seed);
  ShardedLogEngine& engine = d.engine();
  server_config.shard_for_tenant = [&engine](uint64_t tenant) {
    return static_cast<int>(engine.ShardFor(tenant));
  };
  RpcServer server(
      [&engine](std::string_view op, const Bytes& body) {
        return DispatchEngineRpc(engine, op, body);
      },
      transport_key, server_config, &d.telemetry());
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("LISTENING %u\n", server.port());
  std::printf(
      "engine address %s, %u shards, epoch every %u blocks, batch %u, "
      "%d rpc workers\n",
      engine.address().ToHex().c_str(), engine.num_shards(),
      opts.epoch_blocks, opts.batch, opts.workers);
  std::fflush(stdout);

  // Readiness: recovery (when requested) has succeeded by this point,
  // the RPC server is listening, and the aggregator is not sitting on a
  // backlog of unconfirmable epochs.
  const bool recovered = opts.recover;
  auto health = [&server, &engine, recovered]() {
    AdminHealth h;
    EpochRootAggregator* agg = engine.aggregator();
    const uint64_t unconfirmed =
        agg == nullptr ? 0 : agg->epochs_unconfirmed();
    const bool wedged = unconfirmed >= kWedgedUnconfirmedEpochs;
    h.ready = server.running() && !wedged;
    std::string detail = "{\"listening\": ";
    detail += server.running() ? "true" : "false";
    detail += ", \"recovery_ran\": ";
    detail += recovered ? "true" : "false";
    detail += ", \"aggregator\": {\"present\": ";
    detail += agg != nullptr ? "true" : "false";
    detail += ", \"epochs_closed\": " +
              std::to_string(agg == nullptr ? 0 : agg->epochs_closed());
    detail += ", \"epochs_unconfirmed\": " + std::to_string(unconfirmed);
    detail += ", \"wedged\": ";
    detail += wedged ? "true" : "false";
    detail += "}, \"shards\": [";
    for (uint32_t s = 0; s < engine.num_shards(); ++s) {
      if (s > 0) detail += ", ";
      detail += "{\"shard\": " + std::to_string(s) + ", \"positions\": " +
                std::to_string(engine.shard(s).LogPositions()) + "}";
    }
    detail += "]}";
    h.detail = std::move(detail);
    return h;
  };
  std::unique_ptr<AdminHttpServer> admin =
      StartAdmin(opts, &d.telemetry(), health);

  ServeLoop(opts, [&d] { d.AdvanceBlocks(1); });
  if (admin != nullptr) admin->Shutdown();

  std::printf("shutting down (served %llu requests)\n",
              static_cast<unsigned long long>(server.requests_served()));
  server.Shutdown();
  if (!opts.telemetry_out.empty()) {
    Status s = WriteTelemetryFile(opts.telemetry_out, d.telemetry(),
                                  /*append=*/false);
    if (!s.ok()) {
      std::fprintf(stderr, "telemetry write failed: %s\n",
                   s.ToString().c_str());
    }
  }
  return 0;
}

int Run(const Options& opts) {
  DeploymentConfig config;
  config.node.batch_size = opts.batch;
  config.node.worker_threads = opts.node_threads;
  config.node.verify_client_signatures = opts.verify_sigs;
  auto deployment = Deployment::Create(config);
  if (!deployment.ok()) {
    std::fprintf(stderr, "deployment failed: %s\n",
                 deployment.status().ToString().c_str());
    return 1;
  }
  Deployment& d = **deployment;

  RpcServerConfig server_config;
  server_config.bind_address = opts.bind;
  server_config.port = opts.port;
  server_config.num_workers = opts.workers;
  server_config.max_frame_bytes = opts.max_frame_mb << 20;
  server_config.slow_request_micros = opts.slow_request_ms * kMicrosPerMilli;
  // The classic daemon serves one node: every tenant maps to shard 0.
  server_config.shard_for_tenant = [](uint64_t) { return 0; };
  // The daemon signs transport replies with the node's own operator key,
  // so clients can pin one address for both proofs and transport.
  KeyPair transport_key = KeyPair::FromSeed(config.offchain_key_seed);
  RpcServer server(&d.node(), transport_key, server_config, &d.telemetry());
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("LISTENING %u\n", server.port());
  std::printf("node address %s, batch %u, %d rpc workers\n",
              d.node().address().ToHex().c_str(), opts.batch, opts.workers);
  std::fflush(stdout);

  auto health = [&server, &d]() {
    AdminHealth h;
    h.ready = server.running();
    h.detail = "{\"listening\": " +
               std::string(server.running() ? "true" : "false") +
               ", \"positions\": " + std::to_string(d.node().LogPositions()) +
               "}";
    return h;
  };
  std::unique_ptr<AdminHttpServer> admin =
      StartAdmin(opts, &d.telemetry(), health);

  ServeLoop(opts, [&d] { d.AdvanceBlocks(1); });
  if (admin != nullptr) admin->Shutdown();

  std::printf("shutting down (served %llu requests)\n",
              static_cast<unsigned long long>(server.requests_served()));
  server.Shutdown();
  if (!opts.telemetry_out.empty()) {
    Status s = WriteTelemetryFile(opts.telemetry_out, d.telemetry(),
                                  /*append=*/false);
    if (!s.ok()) {
      std::fprintf(stderr, "telemetry write failed: %s\n",
                   s.ToString().c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace wedge

int main(int argc, char** argv) {
  auto opts = wedge::Parse(argc, argv);
  if (!opts.ok()) {
    std::fprintf(stderr, "%s\n", opts.status().ToString().c_str());
    return wedge::Usage(argv[0]);
  }
  return opts->shards > 0 ? wedge::RunSharded(*opts) : wedge::Run(*opts);
}
